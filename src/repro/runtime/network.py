"""Network cost engine: routes messages, models contention, charges time.

A *round* is a set of point-to-point transfers that are in flight
simultaneously (all the sends of one collective phase).  For every
transfer we route through the task mapping onto the physical topology,
count how many transfers cross each directed link, and slow each transfer
down by the maximum load along its path — a first-order store-and-share
contention model for the BlueGene/L torus.

The analysis is fully vectorised: each (src, dst) pair's route is interned
once as an array of small integer *link ids* (at most ``6 * num_nodes``
directed links exist, so ids stay dense), a round's link loads come from a
single ``bincount`` over every link the round crosses, and whole transfer
*patterns* — the (src, dst) sequence of a round, which recurs every BFS
level for a given collective — are memoised with their per-transfer hop
counts and contention factors.  Only the byte counts change level to
level, so a repeated pattern costs one fused array expression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.bluegene import MachineModel
from repro.machine.mapping import TaskMapping


@dataclass(frozen=True, slots=True)
class Transfer:
    """One point-to-point message within a round (lengths in vertices).

    ``nbytes`` is the encoded on-wire size when a :mod:`repro.wire` codec
    is in play; ``None`` means the uncompressed default
    (``num_vertices * bytes_per_vertex``).
    """

    src: int
    dst: int
    num_vertices: int
    nbytes: int | None = None


class Network:
    """Charges simulated time for rounds of transfers over a mapped topology."""

    __slots__ = ("mapping", "model", "_route_cache", "_link_ids",
                 "_route_id_cache", "_pattern_cache",
                 "_pair_keys", "_pair_starts", "_pair_lens", "_pair_links")

    def __init__(self, mapping: TaskMapping, model: MachineModel) -> None:
        self.mapping = mapping
        self.model = model
        #: lazy tuple-list routes, kept for inspection/debugging callers only
        self._route_cache: dict[tuple[int, int], list[tuple[int, int]]] = {}
        #: directed physical link -> dense id, interned on first traversal
        self._link_ids: dict[tuple[int, int], int] = {}
        #: (src, dst) -> int-encoded link-id route array
        self._route_id_cache: dict[tuple[int, int], np.ndarray] = {}
        #: (src-seq, dst-seq) -> (hops, contention) per-transfer arrays
        self._pattern_cache: dict[tuple[bytes, bytes], tuple[np.ndarray, np.ndarray]] = {}
        #: interned (src * P + dst) pair table: sorted keys with parallel
        #: CSR (start, length) views into one concatenated link-id array
        self._pair_keys = np.empty(0, dtype=np.int64)
        self._pair_starts = np.empty(0, dtype=np.int64)
        self._pair_lens = np.empty(0, dtype=np.int64)
        self._pair_links = np.empty(0, dtype=np.int64)

    def hops(self, src: int, dst: int) -> int:
        """Physical hop distance between logical ranks."""
        return self.mapping.hops(src, dst)

    def round_times(
        self,
        transfers: list[Transfer],
        multipliers: list[float] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-rank (send_time, recv_time) for one round of ``transfers``.

        ``multipliers`` (parallel to ``transfers``) scale individual
        transfer costs — the fault layer's degraded-link / detour factors.
        Self-sends cost nothing on the wire (they are local memcpys whose
        processing cost is charged by the compute model).
        """
        send_time, recv_time, _ = self.round_times_detailed(transfers, multipliers)
        return send_time, recv_time

    def round_times_detailed(
        self,
        transfers: list[Transfer],
        multipliers: list[float] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list[float]]:
        """Like :meth:`round_times`, plus each transfer's own seconds.

        The third element is parallel to ``transfers`` (self-sends get
        0.0) — callers use it to price retransmissions of a specific
        transfer without re-running contention analysis.
        """
        if multipliers is not None and len(multipliers) != len(transfers):
            raise ValueError("multipliers must be parallel to transfers")
        count = len(transfers)
        src = np.fromiter((t.src for t in transfers), dtype=np.int64, count=count)
        dst = np.fromiter((t.dst for t in transfers), dtype=np.int64, count=count)
        bpv = self.model.bytes_per_vertex
        nbytes = np.fromiter(
            (
                t.num_vertices * bpv if t.nbytes is None else t.nbytes
                for t in transfers
            ),
            dtype=np.int64,
            count=count,
        )
        mult = None if multipliers is None else np.asarray(multipliers, dtype=np.float64)
        send_time, recv_time, per_transfer = self.round_times_arrays(
            src, dst, nbytes, mult
        )
        return send_time, recv_time, per_transfer.tolist()

    def round_times_arrays(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        nbytes: np.ndarray,
        multipliers: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-native round analysis: per-rank times + per-transfer seconds.

        ``src``/``dst``/``nbytes`` are parallel arrays (``nbytes`` is the
        on-wire byte count of each transfer); ``multipliers``, when given,
        is parallel too.  Self-sends (``src == dst``) cost 0.0.
        """
        nranks = self.mapping.grid.size
        send_time = np.zeros(nranks, dtype=np.float64)
        recv_time = np.zeros(nranks, dtype=np.float64)
        per_transfer = np.zeros(src.shape[0], dtype=np.float64)
        wire_mask = src != dst
        if not wire_mask.any():
            return send_time, recv_time, per_transfer
        if wire_mask.all():
            wsrc, wdst, wbytes = src, dst, nbytes
            wmult = multipliers
        else:
            wsrc, wdst, wbytes = src[wire_mask], dst[wire_mask], nbytes[wire_mask]
            wmult = None if multipliers is None else multipliers[wire_mask]

        hops, contention = self._pattern(
            np.ascontiguousarray(wsrc, dtype=np.int64),
            np.ascontiguousarray(wdst, dtype=np.int64),
        )
        model = self.model
        # Mirrors MachineModel.message_time_bytes term by term so the
        # vectorised floats match the scalar path bit for bit.
        seconds = (
            model.alpha
            + hops * model.per_hop
            + contention * wbytes.astype(np.float64) / model.bandwidth
        )
        if wmult is not None:
            seconds = seconds * wmult
        per_transfer[wire_mask] = seconds
        np.add.at(send_time, wsrc, seconds)
        np.add.at(recv_time, wdst, seconds)
        return send_time, recv_time, per_transfer

    # ------------------------------------------------------------------ #
    # pattern analysis
    # ------------------------------------------------------------------ #
    def _pattern(
        self, wsrc: np.ndarray, wdst: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-transfer (hops, contention) for one round's wire transfers.

        Contention depends only on the round's (src, dst) multiset, not on
        message sizes, so the result is memoised on the pair sequence.
        """
        key = (wsrc.tobytes(), wdst.tobytes())
        cached = self._pattern_cache.get(key)
        if cached is not None:
            return cached
        # Resolve every pair against the interned pair table (one
        # searchsorted), routing only pairs seen for the first time.
        nranks = self.mapping.grid.size
        pair_keys = wsrc * nranks + wdst
        idx = np.searchsorted(self._pair_keys, pair_keys)
        idx_c = np.minimum(idx, max(self._pair_keys.size - 1, 0))
        known = (
            self._pair_keys[idx_c] == pair_keys
            if self._pair_keys.size
            else np.zeros(pair_keys.shape, dtype=bool)
        )
        if not known.all():
            self._intern_pairs(np.unique(pair_keys[~known]))
            idx = np.searchsorted(self._pair_keys, pair_keys)
        starts = self._pair_starts[idx]
        lengths = self._pair_lens[idx]
        total = int(lengths.sum())
        if total:
            out_offsets = np.concatenate(([0], np.cumsum(lengths)))
            gather = np.arange(total, dtype=np.int64)
            gather += np.repeat(starts - out_offsets[:-1], lengths)
            all_links = self._pair_links[gather]
        else:
            all_links = np.empty(0, dtype=np.int64)
        loads = np.bincount(all_links, minlength=len(self._link_ids))
        contention = np.ones(lengths.size, dtype=np.float64)
        nonempty = lengths > 0
        if nonempty.all() and all_links.size:
            row_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
            contention = np.maximum.reduceat(
                loads[all_links], row_starts
            ).astype(np.float64)
        elif all_links.size:
            # Degenerate: some route is empty (ranks sharing a node).
            offset = 0
            for i, length in enumerate(lengths):
                if length:
                    contention[i] = float(
                        loads[all_links[offset : offset + length]].max()
                    )
                    offset += length
        cached = (lengths.astype(np.float64), contention)
        self._pattern_cache[key] = cached
        return cached

    def _intern_pairs(self, new_keys: np.ndarray) -> None:
        """Route ``new_keys`` (sorted unique ``src * P + dst``, none interned
        yet) and rebuild the key-sorted pair table once."""
        nranks = self.mapping.grid.size
        routes = [
            self._route_ids(int(k // nranks), int(k % nranks)) for k in new_keys
        ]
        new_lens = np.fromiter(
            (r.size for r in routes), dtype=np.int64, count=len(routes)
        )
        new_starts = self._pair_links.size + np.concatenate(
            ([0], np.cumsum(new_lens)[:-1])
        )
        keys = np.concatenate((self._pair_keys, new_keys))
        starts = np.concatenate((self._pair_starts, new_starts))
        lens = np.concatenate((self._pair_lens, new_lens))
        order = np.argsort(keys, kind="stable")
        self._pair_keys = keys[order]
        self._pair_starts = starts[order]
        self._pair_lens = lens[order]
        self._pair_links = np.concatenate([self._pair_links, *routes])

    def _route_ids(self, src: int, dst: int) -> np.ndarray:
        """Int-encoded link-id route of one (src, dst) pair (cached)."""
        key = (src, dst)
        cached = self._route_id_cache.get(key)
        if cached is None:
            route = self.mapping.torus.route(
                self.mapping.node_of(src), self.mapping.node_of(dst)
            )
            link_ids = self._link_ids
            cached = np.empty(len(route), dtype=np.int64)
            for k, link in enumerate(route):
                lid = link_ids.get(link)
                if lid is None:
                    lid = len(link_ids)
                    link_ids[link] = lid
                cached[k] = lid
            self._route_id_cache[key] = cached
        return cached

    def _route(self, src: int, dst: int) -> list[tuple[int, int]]:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = self.mapping.torus.route(
                self.mapping.node_of(src), self.mapping.node_of(dst)
            )
            self._route_cache[key] = cached
        return cached
