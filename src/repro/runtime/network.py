"""Network cost engine: routes messages, models contention, charges time.

A *round* is a set of point-to-point transfers that are in flight
simultaneously (all the sends of one collective phase).  For every
transfer we route through the task mapping onto the physical topology,
count how many transfers cross each directed link, and slow each transfer
down by the maximum load along its path — a first-order store-and-share
contention model for the BlueGene/L torus.

The analysis is fully vectorised: each (src, dst) pair's route is interned
once as an array of small integer *link ids* (at most ``6 * num_nodes``
directed links exist, so ids stay dense), a round's link loads come from a
single ``bincount`` over every link the round crosses, and whole transfer
*patterns* — the (src, dst) sequence of a round, which recurs every BFS
level for a given collective — are memoised with their per-transfer hop
counts and contention factors.  Only the byte counts change level to
level, so a repeated pattern costs one fused array expression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.bluegene import MachineModel
from repro.machine.mapping import TaskMapping


@dataclass(frozen=True, slots=True)
class PairPopulation:
    """Pre-analysed routes for a fixed (src, dst) pair population.

    Collectives whose every round draws its wire transfers from one fixed
    pair set (a ring's member -> successor pairs) prepare the population
    once and then charge each round by *indexing* into it, skipping the
    per-round route resolution entirely:

    * ``hops[k]`` — hop count of input pair ``k``;
    * ``links[indptr[k]:indptr[k+1]]`` — pair ``k``'s link ids (CSR, so
      the per-round load analysis touches only real links, no padding);
    * ``lens[k]`` — pair ``k``'s link count (``np.diff(indptr)``);
    * ``full_cont[k]`` — pair ``k``'s contention when the *whole*
      population is in flight at once (the common case in a collective's
      heavy rounds, where no chunk is empty — then the per-round load
      analysis collapses to one gather);
    * ``disjoint`` — no physical link is shared by two pairs of the
      population.  Then *any* subset of pairs in flight together sees a
      per-link load of at most 1, i.e. contention is identically 1.0 and
      no load analysis is needed at all.
    """

    hops: np.ndarray
    links: np.ndarray
    indptr: np.ndarray
    lens: np.ndarray
    full_cont: np.ndarray
    disjoint: bool


@dataclass(frozen=True, slots=True)
class Transfer:
    """One point-to-point message within a round (lengths in vertices).

    ``nbytes`` is the encoded on-wire size when a :mod:`repro.wire` codec
    is in play; ``None`` means the uncompressed default
    (``num_vertices * bytes_per_vertex``).
    """

    src: int
    dst: int
    num_vertices: int
    nbytes: int | None = None


def _dim_steps(
    a: np.ndarray, b: np.ndarray, dim: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised e-cube per-dimension decision: (step sign, hop count).

    Matches ``Torus3D._dim_step`` exactly (ties go forward)."""
    fwd = (b - a) % dim
    bwd = (a - b) % dim
    return np.where(fwd <= bwd, 1, -1), np.minimum(fwd, bwd)


class Network:
    """Charges simulated time for rounds of transfers over a mapped topology."""

    __slots__ = ("mapping", "model", "_route_cache", "_num_links",
                 "_pattern_cache", "_population_cache",
                 "_pair_keys", "_pair_starts", "_pair_lens", "_pair_links")

    def __init__(self, mapping: TaskMapping, model: MachineModel) -> None:
        self.mapping = mapping
        self.model = model
        #: lazy tuple-list routes, kept for inspection/debugging callers only
        self._route_cache: dict[tuple[int, int], list[tuple[int, int]]] = {}
        #: dense directed-link id space: ``node * 6 + dim * 2 + (step > 0)``
        self._num_links = 6 * mapping.torus.num_nodes
        #: (src-seq, dst-seq) -> (hops, contention) per-transfer arrays
        self._pattern_cache: dict[tuple[bytes, bytes], tuple[np.ndarray, np.ndarray]] = {}
        #: (src-seq, dst-seq) -> prepared PairPopulation (ring pair sets
        #: recur every level; populations are immutable)
        self._population_cache: dict[tuple[bytes, bytes], PairPopulation] = {}
        #: interned (src * P + dst) pair table: sorted keys with parallel
        #: CSR (start, length) views into one concatenated link-id array
        self._pair_keys = np.empty(0, dtype=np.int64)
        self._pair_starts = np.empty(0, dtype=np.int64)
        self._pair_lens = np.empty(0, dtype=np.int64)
        self._pair_links = np.empty(0, dtype=np.int64)

    def hops(self, src: int, dst: int) -> int:
        """Physical hop distance between logical ranks."""
        return self.mapping.hops(src, dst)

    def round_times(
        self,
        transfers: list[Transfer],
        multipliers: list[float] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-rank (send_time, recv_time) for one round of ``transfers``.

        ``multipliers`` (parallel to ``transfers``) scale individual
        transfer costs — the fault layer's degraded-link / detour factors.
        Self-sends cost nothing on the wire (they are local memcpys whose
        processing cost is charged by the compute model).
        """
        send_time, recv_time, _ = self.round_times_detailed(transfers, multipliers)
        return send_time, recv_time

    def round_times_detailed(
        self,
        transfers: list[Transfer],
        multipliers: list[float] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list[float]]:
        """Like :meth:`round_times`, plus each transfer's own seconds.

        The third element is parallel to ``transfers`` (self-sends get
        0.0) — callers use it to price retransmissions of a specific
        transfer without re-running contention analysis.
        """
        if multipliers is not None and len(multipliers) != len(transfers):
            raise ValueError("multipliers must be parallel to transfers")
        count = len(transfers)
        src = np.fromiter((t.src for t in transfers), dtype=np.int64, count=count)
        dst = np.fromiter((t.dst for t in transfers), dtype=np.int64, count=count)
        bpv = self.model.bytes_per_vertex
        nbytes = np.fromiter(
            (
                t.num_vertices * bpv if t.nbytes is None else t.nbytes
                for t in transfers
            ),
            dtype=np.int64,
            count=count,
        )
        mult = None if multipliers is None else np.asarray(multipliers, dtype=np.float64)
        send_time, recv_time, per_transfer = self.round_times_arrays(
            src, dst, nbytes, mult
        )
        return send_time, recv_time, per_transfer.tolist()

    def round_times_arrays(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        nbytes: np.ndarray,
        multipliers: np.ndarray | None = None,
        population: PairPopulation | None = None,
        pop_idx: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-native round analysis: per-rank times + per-transfer seconds.

        ``src``/``dst``/``nbytes`` are parallel arrays (``nbytes`` is the
        on-wire byte count of each transfer); ``multipliers``, when given,
        is parallel too.  Self-sends (``src == dst``) cost 0.0.

        ``population``/``pop_idx``: transfer ``k`` is pair ``pop_idx[k]``
        of a prepared :class:`PairPopulation` (``pop_idx=None`` means the
        transfers are the whole population in preparation order; no
        self-sends allowed) —
        hop counts come from the population table, and contention comes
        from the padded link matrix, or is identically 1.0 for a
        link-disjoint population.  Same floats as the generic analysis.
        """
        nranks = self.mapping.grid.size
        send_time = np.zeros(nranks, dtype=np.float64)
        recv_time = np.zeros(nranks, dtype=np.float64)
        per_transfer = np.zeros(src.shape[0], dtype=np.float64)
        if population is not None:
            if src.size == 0:
                return send_time, recv_time, per_transfer
            if pop_idx is None:
                # The whole population in preparation order — the common
                # heavy-round case, with zero per-round indexing.
                hops = population.hops
                contention = 1.0 if population.disjoint else population.full_cont
            elif population.disjoint:
                hops = population.hops[pop_idx]
                contention = 1.0
            elif pop_idx.size == population.lens.size:
                # The whole population is in flight: the load analysis was
                # done at preparation time.
                hops = population.hops[pop_idx]
                contention = population.full_cont[pop_idx]
            else:
                hops = population.hops[pop_idx]
                lens = population.lens[pop_idx]
                total = int(lens.sum())
                if total:
                    out_off = np.concatenate(([0], np.cumsum(lens)))
                    gidx = np.arange(total, dtype=np.int64)
                    gidx += np.repeat(
                        population.indptr[pop_idx] - out_off[:-1], lens
                    )
                    act = population.links[gidx]
                    loads = np.bincount(act)
                    # per-pair max link load over each CSR run; empty runs
                    # (ranks sharing a node) keep the generic path's 1.0
                    red_at = np.minimum(out_off[:-1], total - 1)
                    cont = np.maximum.reduceat(loads[act], red_at)
                    cont[lens == 0] = 1
                    contention = np.maximum(cont.astype(np.float64), 1.0)
                else:
                    contention = 1.0
            model = self.model
            seconds = (
                model.alpha
                + hops * model.per_hop
                + contention * nbytes.astype(np.float64) / model.bandwidth
            )
            if multipliers is not None:
                seconds = seconds * multipliers
            per_transfer[:] = seconds
            # bincount accumulates in traversal order like np.add.at but
            # runs a single fused pass
            send_time += np.bincount(src, weights=seconds, minlength=nranks)
            recv_time += np.bincount(dst, weights=seconds, minlength=nranks)
            return send_time, recv_time, per_transfer
        wire_mask = src != dst
        if not wire_mask.any():
            return send_time, recv_time, per_transfer
        if wire_mask.all():
            wsrc, wdst, wbytes = src, dst, nbytes
            wmult = multipliers
        else:
            wsrc, wdst, wbytes = src[wire_mask], dst[wire_mask], nbytes[wire_mask]
            wmult = None if multipliers is None else multipliers[wire_mask]

        hops, contention = self._pattern(
            np.ascontiguousarray(wsrc, dtype=np.int64),
            np.ascontiguousarray(wdst, dtype=np.int64),
        )
        model = self.model
        # Mirrors MachineModel.message_time_bytes term by term so the
        # vectorised floats match the scalar path bit for bit.
        seconds = (
            model.alpha
            + hops * model.per_hop
            + contention * wbytes.astype(np.float64) / model.bandwidth
        )
        if wmult is not None:
            seconds = seconds * wmult
        per_transfer[wire_mask] = seconds
        np.add.at(send_time, wsrc, seconds)
        np.add.at(recv_time, wdst, seconds)
        return send_time, recv_time, per_transfer

    # ------------------------------------------------------------------ #
    # pattern analysis
    # ------------------------------------------------------------------ #
    def _pattern(
        self, wsrc: np.ndarray, wdst: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-transfer (hops, contention) for one round's wire transfers.

        Contention depends only on the round's (src, dst) multiset, not on
        message sizes, so the result is memoised on the pair sequence.
        """
        key = (wsrc.tobytes(), wdst.tobytes())
        cached = self._pattern_cache.get(key)
        if cached is not None:
            return cached
        # Resolve every pair against the interned pair table (one
        # searchsorted), routing only pairs seen for the first time.
        nranks = self.mapping.grid.size
        pair_keys = wsrc * nranks + wdst
        idx = np.searchsorted(self._pair_keys, pair_keys)
        idx_c = np.minimum(idx, max(self._pair_keys.size - 1, 0))
        known = (
            self._pair_keys[idx_c] == pair_keys
            if self._pair_keys.size
            else np.zeros(pair_keys.shape, dtype=bool)
        )
        if not known.all():
            self._intern_pairs(np.unique(pair_keys[~known]))
            idx = np.searchsorted(self._pair_keys, pair_keys)
        starts = self._pair_starts[idx]
        lengths = self._pair_lens[idx]
        total = int(lengths.sum())
        if total:
            out_offsets = np.concatenate(([0], np.cumsum(lengths)))
            gather = np.arange(total, dtype=np.int64)
            gather += np.repeat(starts - out_offsets[:-1], lengths)
            all_links = self._pair_links[gather]
        else:
            all_links = np.empty(0, dtype=np.int64)
        loads = np.bincount(all_links, minlength=self._num_links)
        contention = np.ones(lengths.size, dtype=np.float64)
        nonempty = lengths > 0
        if nonempty.all() and all_links.size:
            row_starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
            contention = np.maximum.reduceat(
                loads[all_links], row_starts
            ).astype(np.float64)
        elif all_links.size:
            # Degenerate: some route is empty (ranks sharing a node).
            offset = 0
            for i, length in enumerate(lengths):
                if length:
                    contention[i] = float(
                        loads[all_links[offset : offset + length]].max()
                    )
                    offset += length
        cached = (lengths.astype(np.float64), contention)
        self._pattern_cache[key] = cached
        return cached

    def prepare_pairs(self, src: np.ndarray, dst: np.ndarray) -> PairPopulation:
        """Pre-analyse a recurring pair population (one route per input pair).

        Interns any unseen routes in one batch (so no later round pays an
        incremental pair-table rebuild) and returns a
        :class:`PairPopulation` aligned with the input arrays, for use
        with :meth:`round_times_arrays`'s ``population`` fast path.  The
        input must not contain self-sends or repeated pairs.  Pure
        analysis: charges nothing, changes no result.
        """
        cache_key = (src.tobytes(), dst.tobytes())
        cached = self._population_cache.get(cache_key)
        if cached is not None:
            return cached
        nranks = self.mapping.grid.size
        keys = src * nranks + dst
        sorted_new = np.unique(keys)
        idx = np.searchsorted(self._pair_keys, sorted_new)
        idx_c = np.minimum(idx, max(self._pair_keys.size - 1, 0))
        known = (
            self._pair_keys[idx_c] == sorted_new
            if self._pair_keys.size
            else np.zeros(sorted_new.shape, dtype=bool)
        )
        if not known.all():
            self._intern_pairs(sorted_new[~known])
        idx = np.searchsorted(self._pair_keys, keys)
        starts = self._pair_starts[idx]
        lens = self._pair_lens[idx]
        total = int(lens.sum())
        indptr = np.concatenate(([0], np.cumsum(lens)))
        if total:
            gather = np.arange(total, dtype=np.int64)
            gather += np.repeat(starts - indptr[:-1], lens)
            all_links = self._pair_links[gather]
            loads = np.bincount(all_links)
            disjoint = int(loads.max()) <= 1
            red_at = np.minimum(indptr[:-1], total - 1)
            full_cont = np.maximum.reduceat(loads[all_links], red_at)
            full_cont[lens == 0] = 1
            full_cont = np.maximum(full_cont.astype(np.float64), 1.0)
        else:
            all_links = np.empty(0, dtype=np.int64)
            disjoint = True
            full_cont = np.ones(keys.size, dtype=np.float64)
        population = PairPopulation(
            hops=lens.astype(np.float64),
            links=all_links,
            indptr=indptr,
            lens=lens,
            full_cont=full_cont,
            disjoint=disjoint,
        )
        self._population_cache[cache_key] = population
        return population

    def _intern_pairs(self, new_keys: np.ndarray) -> None:
        """Route ``new_keys`` (sorted unique ``src * P + dst``, none interned
        yet) with the batch router and rebuild the key-sorted pair table once."""
        nranks = self.mapping.grid.size
        nodes = self.mapping.rank_to_node
        links, new_lens = self._batch_route(
            nodes[new_keys // nranks], nodes[new_keys % nranks]
        )
        new_starts = self._pair_links.size + np.concatenate(
            ([0], np.cumsum(new_lens)[:-1])
        )
        keys = np.concatenate((self._pair_keys, new_keys))
        starts = np.concatenate((self._pair_starts, new_starts))
        lens = np.concatenate((self._pair_lens, new_lens))
        order = np.argsort(keys, kind="stable")
        self._pair_keys = keys[order]
        self._pair_starts = starts[order]
        self._pair_lens = lens[order]
        self._pair_links = np.concatenate((self._pair_links, links))

    def _batch_route(
        self, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dimension-ordered routes of node pairs ``a[k] -> b[k]``, batched.

        Returns ``(links, lens)``: one concatenated link-id array (pair
        ``k``'s route is the ``lens[k]`` ids after ``lens[:k].sum()``, in
        x-then-y-then-z traversal order) plus the per-pair hop counts.
        Link ids use the arithmetic encoding ``node * 6 + dim * 2 +
        (step > 0)`` — a bijection with the directed physical links the
        scalar :meth:`~repro.machine.torus.Torus3D.route` walks, so link
        loads (and hence contention) are unchanged.
        """
        X, Y, Z = self.mapping.torus.dims
        ax, bx = a % X, b % X
        ay, by = (a // X) % Y, (b // X) % Y
        az, bz = a // (X * Y), b // (X * Y)
        sx, cx = _dim_steps(ax, bx, X)
        sy, cy = _dim_steps(ay, by, Y)
        sz, cz = _dim_steps(az, bz, Z)
        lens = cx + cy + cz
        pair_off = np.concatenate(([0], np.cumsum(lens)))
        out = np.empty(int(pair_off[-1]), dtype=np.int64)

        def emit(cnt, start, step, dim_axis, base, stride, dim, dim_off):
            # the t-th link of this dimension leaves coordinate
            # start + t*step (mod dim); earlier dimensions are already at
            # their targets (folded into ``base``), later ones still at
            # their starts
            total = int(cnt.sum())
            if not total:
                return
            offs = np.concatenate(([0], np.cumsum(cnt)[:-1]))
            t = np.arange(total, dtype=np.int64) - np.repeat(offs, cnt)
            step_r = np.repeat(step, cnt)
            coord = (np.repeat(start, cnt) + t * step_r) % dim
            u = np.repeat(base, cnt) + coord * stride
            out[np.repeat(pair_off[:-1] + dim_off, cnt) + t] = (
                u * 6 + 2 * dim_axis + (step_r > 0)
            )

        emit(cx, ax, sx, 0, X * (ay + Y * az), 1, X, np.int64(0))
        emit(cy, ay, sy, 1, bx + X * Y * az, X, Y, cx)
        emit(cz, az, sz, 2, bx + X * by, X * Y, Z, cx + cy)
        return out, lens

    def _route(self, src: int, dst: int) -> list[tuple[int, int]]:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = self.mapping.torus.route(
                self.mapping.node_of(src), self.mapping.node_of(dst)
            )
            self._route_cache[key] = cached
        return cached
