"""Network cost engine: routes messages, models contention, charges time.

A *round* is a set of point-to-point transfers that are in flight
simultaneously (all the sends of one collective phase).  For every
transfer we route through the task mapping onto the physical topology,
count how many transfers cross each directed link, and slow each transfer
down by the maximum load along its path — a first-order store-and-share
contention model for the BlueGene/L torus.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.machine.bluegene import MachineModel
from repro.machine.mapping import TaskMapping


@dataclass(frozen=True, slots=True)
class Transfer:
    """One point-to-point message within a round (lengths in vertices).

    ``nbytes`` is the encoded on-wire size when a :mod:`repro.wire` codec
    is in play; ``None`` means the uncompressed default
    (``num_vertices * bytes_per_vertex``).
    """

    src: int
    dst: int
    num_vertices: int
    nbytes: int | None = None


class Network:
    """Charges simulated time for rounds of transfers over a mapped topology."""

    __slots__ = ("mapping", "model", "_route_cache")

    def __init__(self, mapping: TaskMapping, model: MachineModel) -> None:
        self.mapping = mapping
        self.model = model
        self._route_cache: dict[tuple[int, int], list[tuple[int, int]]] = {}

    def hops(self, src: int, dst: int) -> int:
        """Physical hop distance between logical ranks."""
        return self.mapping.hops(src, dst)

    def round_times(
        self,
        transfers: list[Transfer],
        multipliers: list[float] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-rank (send_time, recv_time) for one round of ``transfers``.

        ``multipliers`` (parallel to ``transfers``) scale individual
        transfer costs — the fault layer's degraded-link / detour factors.
        Self-sends cost nothing on the wire (they are local memcpys whose
        processing cost is charged by the compute model).
        """
        send_time, recv_time, _ = self.round_times_detailed(transfers, multipliers)
        return send_time, recv_time

    def round_times_detailed(
        self,
        transfers: list[Transfer],
        multipliers: list[float] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list[float]]:
        """Like :meth:`round_times`, plus each transfer's own seconds.

        The third element is parallel to ``transfers`` (self-sends get
        0.0) — the communicator uses it to price retransmissions of a
        specific transfer without re-running contention analysis.
        """
        nranks = self.mapping.grid.size
        send_time = np.zeros(nranks, dtype=np.float64)
        recv_time = np.zeros(nranks, dtype=np.float64)
        per_transfer = [0.0] * len(transfers)
        if multipliers is not None and len(multipliers) != len(transfers):
            raise ValueError("multipliers must be parallel to transfers")
        wire = [(i, t) for i, t in enumerate(transfers) if t.src != t.dst]
        if not wire:
            return send_time, recv_time, per_transfer

        link_load: Counter[tuple[int, int]] = Counter()
        routes: list[list[tuple[int, int]]] = []
        for _, t in wire:
            route = self._route(t.src, t.dst)
            routes.append(route)
            link_load.update(route)

        for (i, t), route in zip(wire, routes):
            contention = max((link_load[link] for link in route), default=1)
            nbytes = (
                t.num_vertices * self.model.bytes_per_vertex
                if t.nbytes is None
                else t.nbytes
            )
            seconds = self.model.message_time_bytes(nbytes, hops=len(route),
                                                    contention=float(contention))
            if multipliers is not None:
                seconds *= multipliers[i]
            per_transfer[i] = seconds
            send_time[t.src] += seconds
            recv_time[t.dst] += seconds
        return send_time, recv_time, per_transfer

    def _route(self, src: int, dst: int) -> list[tuple[int, int]]:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = self.mapping.torus.route(
                self.mapping.node_of(src), self.mapping.node_of(dst)
            )
            self._route_cache[key] = cached
        return cached
