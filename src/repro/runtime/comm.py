"""The virtual communicator: synchronous message rounds over the network model.

This is the library's stand-in for an MPI communicator.  BFS drivers and
collective algorithms talk to it exclusively through:

* :meth:`Communicator.exchange` — one synchronous round of point-to-point
  messages (payloads are int64 vertex arrays, chunked to the fixed buffer
  capacity of Section 3.1),
* :meth:`Communicator.allreduce_sum` / :meth:`allreduce_flag` — the global
  termination check of the level-synchronous loop,
* :meth:`Communicator.charge_compute` — local-work cost accounting.

Time is charged through the :class:`~repro.runtime.network.Network`
contention model and the per-rank :class:`~repro.runtime.clock.SimClock`.

A :mod:`repro.wire` codec (``wire=``) compresses every chunk: the network
is charged for the *encoded* bytes, a calibrated per-vertex encode/decode
CPU cost lands on the clock's compute bucket, and the statistics carry
both raw and encoded byte counts.  The default ``"raw"`` codec reproduces
the uncompressed runtime byte-for-byte.

When a :class:`~repro.faults.FaultSchedule` is attached, every wire chunk
consults it: transient drops are retried with exponential backoff (each
wasted transmission and timeout charges simulated *fault* time), degraded
links multiply wire cost, and stragglers multiply compute cost.  A chunk
that exhausts its retries is lost — the inbox never sees it — and the
round is flagged so the BFS engine can roll the level back to its
checkpoint.  Without a schedule every path below is byte-identical to the
fault-free runtime.

Rank crashes ride the same machinery: the schedule fires scheduled
crashes at the first exchange of their level (or, with
``collective_faults=True``, at the level's first reduction — the
reliable-collective-network assumption dropped), every rank pays the
``detect_timeout`` to notice the dead peer, messages to and from dead
ranks are withheld, and the BFS engine drives the recovery —
:meth:`Communicator.consume_crashes` + :meth:`Communicator.recover_crashes`
— before replaying the level from its buddy checkpoint (replicated each
level boundary through :meth:`Communicator.replicate_checkpoint`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CommunicationError, FaultError
from repro.faults import CrashEvent, FaultReport, FaultSchedule, FaultSpec
from repro.machine.bluegene import MachineModel
from repro.machine.mapping import TaskMapping
from repro.observability.spans import NULL_RECORDER, ObserveSpec, SpanRecorder
from repro.runtime.clock import SimClock
from repro.runtime.message import chunk_payload
from repro.runtime.network import Network
from repro.runtime.stats import CommStats
from repro.types import VERTEX_DTYPE, as_vertex_array
from repro.wire import WireCodec, resolve_wire


def _as_payload(values) -> np.ndarray:
    """Cheap :func:`as_vertex_array` for the common already-conforming case."""
    if (
        type(values) is np.ndarray
        and values.dtype == VERTEX_DTYPE
        and values.ndim == 1
        and values.flags.c_contiguous
    ):
        return values
    return as_vertex_array(values)

#: payload type of one round: {src_rank: {dst_rank: vertex-array}}
Outbox = dict[int, dict[int, np.ndarray]]
#: delivery type of one round: {dst_rank: [(src_rank, vertex-array), ...]}
Inbox = dict[int, list[tuple[int, np.ndarray]]]


class Communicator:
    """A P-rank virtual communicator with simulated-time accounting."""

    def __init__(
        self,
        mapping: TaskMapping,
        model: MachineModel,
        *,
        buffer_capacity: int | None = None,
        faults: FaultSpec | FaultSchedule | None = None,
        wire: WireCodec | str | None = None,
        observe: ObserveSpec | str | None = None,
        network: Network | None = None,
    ) -> None:
        self.mapping = mapping
        self.model = model
        # A prebuilt Network may be shared across communicators serving the
        # same mapping+model: its route/pattern tables are pure caches, so
        # reusing it skips the route interning cost on every fresh
        # communicator (the BfsSession / server per-query path).
        if network is not None and (
            network.mapping is not mapping or network.model is not model
        ):
            raise CommunicationError(
                "injected network was built for a different mapping or machine model"
            )
        self.network = network if network is not None else Network(mapping, model)
        self.nranks = mapping.grid.size
        self.grid = mapping.grid
        self.buffer_capacity = buffer_capacity
        #: frontier compression codec applied to every wire chunk
        self.wire: WireCodec = resolve_wire(wire)
        self.clock = SimClock(self.nranks)
        self.stats = CommStats(self.nranks)
        if isinstance(faults, FaultSpec):
            faults = FaultSchedule(faults, self.nranks)
        self.faults: FaultSchedule | None = faults
        self._level_failed = False
        #: crashes fired since the last consume_crashes (engine recovery queue)
        self._crash_pending: list[CrashEvent] = []
        #: the level's first reduction may carry a crash (collective_faults)
        self._allreduce_armed = False
        #: what the observability layer captures (``repro.observability``)
        self.observe = ObserveSpec.parse(observe)
        #: span recorder — the shared no-op singleton when spans are off
        self.obs = SpanRecorder(self.clock) if self.observe.spans else NULL_RECORDER
        #: per-message event capture (installed only for observe "messages"/"full")
        self.obs_trace = None
        if self.observe.messages:
            from repro.runtime.trace import TraceRecorder

            self.obs_trace = TraceRecorder(self).install()

    # ------------------------------------------------------------------ #
    # point-to-point rounds
    # ------------------------------------------------------------------ #
    def exchange(
        self,
        outbox: Outbox,
        phase: str,
        participants: list[int] | None = None,
        *,
        sync: bool = True,
    ) -> Inbox:
        """Execute one synchronous round of point-to-point messages.

        Every payload is chunked to ``buffer_capacity`` (each chunk is a
        separate message paying its own latency — the cost of the paper's
        fixed-length buffers).  Participants are barrier-synchronised after
        the round unless ``sync=False``.

        With a fault schedule attached, each chunk may be dropped and
        retried (see the module docstring); a chunk lost for good is
        withheld from the returned inbox and flags the current level as
        failed.
        """
        obs = self.obs
        span = obs.begin("exchange", cat="exchange", phase=phase) if obs.enabled else None
        faults = self.faults
        dead: frozenset[int] | None = None
        if faults is not None:
            self._fire_crashes("exchange")
            if faults.dead_ranks:
                dead = faults.dead_ranks
        wire = self.wire
        raw_wire = wire.name == "raw"
        bpv = self.model.bytes_per_vertex
        capacity = self.buffer_capacity
        codec_seconds: np.ndarray | None = None
        src_list: list[int] = []
        dst_list: list[int] = []
        nbytes_list: list[int] = []
        plans: list[tuple[int, bool]] = []
        inbox: Inbox = {}
        msg_count = msg_vertices = msg_raw_bytes = msg_enc_bytes = 0
        for src, dests in outbox.items():
            self._check_rank(src)
            for dst, payload in dests.items():
                self._check_rank(dst)
                payload = _as_payload(payload)
                if capacity is None:
                    chunks = (payload,) if payload.size else ()
                else:
                    chunks = chunk_payload(payload, capacity)
                for chunk in chunks:
                    size = chunk.size
                    raw_nbytes = size * bpv
                    # self-sends are local hand-offs — never encoded
                    if raw_wire or src == dst:
                        enc_nbytes = raw_nbytes
                    else:
                        enc_nbytes = wire.encoded_nbytes(chunk)
                    src_list.append(src)
                    dst_list.append(dst)
                    nbytes_list.append(enc_nbytes)
                    msg_count += 1
                    msg_vertices += size
                    msg_raw_bytes += raw_nbytes
                    msg_enc_bytes += enc_nbytes
                    delivered = True
                    if faults is not None and src != dst:
                        transmissions, delivered = faults.transmission_plan(src, dst)
                        plans.append((transmissions, delivered))
                        drops = transmissions - 1 if delivered else transmissions
                        if drops:
                            self.stats.record_fault(drops, transmissions - 1)
                        if not delivered:
                            self._level_failed = True
                    elif faults is not None:
                        plans.append((1, True))
                    if delivered and (
                        dead is None or (src not in dead and dst not in dead)
                    ):
                        inbox.setdefault(dst, []).append((src, chunk))
                    if not raw_wire and src != dst:
                        if codec_seconds is None:
                            codec_seconds = np.zeros(self.nranks, dtype=np.float64)
                        # one encode per chunk (retransmissions reuse the
                        # buffer); decode only where the chunk arrived
                        codec_seconds[src] += wire.encode_seconds(chunk)
                        if delivered:
                            codec_seconds[dst] += wire.decode_seconds(chunk)
        self.stats.record_message_bulk(
            msg_count, msg_vertices, msg_raw_bytes, msg_enc_bytes, phase=phase
        )

        count = len(src_list)
        src_arr = np.array(src_list, dtype=np.int64)
        dst_arr = np.array(dst_list, dtype=np.int64)
        nbytes_arr = np.array(nbytes_list, dtype=np.int64)
        if faults is None:
            send_time, recv_time, _ = self.network.round_times_arrays(
                src_arr, dst_arr, nbytes_arr
            )
            self.clock.advance_many(np.maximum(send_time, recv_time), kind="comm")
        else:
            multipliers = np.fromiter(
                (faults.link_multiplier(s, d) for s, d in zip(src_list, dst_list)),
                dtype=np.float64,
                count=count,
            )
            send_time, recv_time, per_transfer = self.network.round_times_arrays(
                src_arr, dst_arr, nbytes_arr, multipliers
            )
            fault_send = np.zeros(self.nranks, dtype=np.float64)
            fault_recv = np.zeros(self.nranks, dtype=np.float64)
            for src, dst, (transmissions, delivered), seconds in zip(
                src_list, dst_list, plans, per_transfer
            ):
                drops = transmissions - 1 if delivered else transmissions
                if drops == 0:
                    continue
                # wasted retransmissions plus the backoff timeouts that
                # detected each loss; the first transmission is already in
                # the base round times
                extra = (transmissions - 1) * seconds + faults.retry_penalty(drops)
                fault_send[src] += extra
                fault_recv[dst] += extra
            base = np.maximum(send_time, recv_time)
            total = np.maximum(send_time + fault_send, recv_time + fault_recv)
            self.clock.advance_many(base, kind="comm")
            self.clock.advance_many(total - base, kind="fault")
        if codec_seconds is not None and codec_seconds.any():
            self.clock.advance_many(codec_seconds, kind="compute")
        if sync:
            self.barrier(participants)
        if span is not None:
            obs.end(
                span,
                messages=msg_count,
                vertices=msg_vertices,
                raw_bytes=msg_raw_bytes,
                encoded_bytes=msg_enc_bytes,
            )
        return inbox

    def exchange_arrays(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        flat: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        phase: str,
        participants: list[int] | None = None,
        population=None,
        pop_idx: np.ndarray | None = None,
    ) -> None:
        """Array form of :meth:`exchange` for batched collectives (no inbox).

        Message ``k`` carries ``flat[starts[k]:stops[k]]`` from ``src[k]``
        to ``dst[k]``; messages must be non-empty, in the order the
        equivalent outbox dict would iterate, with each ``(src, dst)``
        pair appearing at most once.  With chunking, a non-raw wire codec,
        or fault injection active, this rebuilds the outbox and defers to
        :meth:`exchange` — the fast path below is reserved for the
        byte-identical plain case.

        ``population``/``pop_idx`` forward to
        :meth:`~repro.runtime.network.Network.round_times_arrays` — the
        prepared-pair-population contention shortcut (ignored on the
        dict-outbox fallback, which re-analyses from scratch).
        """
        if (
            self.faults is not None
            or self.buffer_capacity is not None
            or self.wire.name != "raw"
            # an instance-level exchange override (e.g. an installed
            # TraceRecorder) must see every message
            or "exchange" in self.__dict__
        ):
            outbox: Outbox = {}
            for k in range(src.size):
                outbox.setdefault(int(src[k]), {})[int(dst[k])] = flat[
                    starts[k] : stops[k]
                ]
            self.exchange(outbox, phase, participants)
            return
        obs = self.obs
        span = obs.begin("exchange", cat="exchange", phase=phase) if obs.enabled else None
        sizes = stops - starts
        nbytes = sizes * self.model.bytes_per_vertex
        total_bytes = int(nbytes.sum())
        self.stats.record_message_bulk(
            src.size, int(sizes.sum()), total_bytes, total_bytes, phase=phase
        )
        send_time, recv_time, _ = self.network.round_times_arrays(
            src, dst, nbytes, population=population, pop_idx=pop_idx
        )
        self.clock.advance_many(np.maximum(send_time, recv_time), kind="comm")
        self.barrier(participants)
        if span is not None:
            obs.end(
                span,
                messages=int(src.size),
                vertices=int(sizes.sum()),
                raw_bytes=total_bytes,
                encoded_bytes=total_bytes,
            )

    def exchange_summaries(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        nbytes: np.ndarray,
        phase: str = "sieve",
    ) -> None:
        """Ship pre-sized control messages (the sieve's visited summaries).

        Message ``k`` carries ``nbytes[k]`` bytes from ``src[k]`` to
        ``dst[k]``.  Summaries are fixed-size bitmaps, not vertex lists:
        they bypass the wire codec (raw == encoded), carry zero frontier
        vertices, and are charged to the network and statistics under
        ``phase`` so the sieve's overhead stays visible next to the fold
        bytes it saves.  Summaries ride the reliable control plane: fault
        schedules never drop them, and because the exchange runs inside
        the retried level body, a rollback replays the broadcast against
        the restored shadows deterministically.
        """
        obs = self.obs
        span = obs.begin("exchange", cat="exchange", phase=phase) if obs.enabled else None
        total = int(nbytes.sum())
        self.stats.record_message_bulk(int(src.size), 0, total, total, phase=phase)
        send_time, recv_time, _ = self.network.round_times_arrays(src, dst, nbytes)
        self.clock.advance_many(np.maximum(send_time, recv_time), kind="comm")
        self.barrier()
        if span is not None:
            obs.end(
                span,
                messages=int(src.size),
                vertices=0,
                raw_bytes=total,
                encoded_bytes=total,
            )

    def barrier(self, participants: list[int] | None = None) -> None:
        """Synchronise ``participants`` (default: all ranks)."""
        self.clock.sync(participants)

    # ------------------------------------------------------------------ #
    # fault lifecycle (driven by the BFS engines)
    # ------------------------------------------------------------------ #
    def begin_level(self, level: int) -> None:
        """Open level ``level``: statistics row, fault gate, failure flag."""
        self.stats.begin_level(level)
        if self.faults is not None:
            self.faults.begin_level(level)
        self._level_failed = False
        # only the level's own termination reduction — the first one after
        # begin_level — may carry a crash; later reductions (target checks,
        # the bidirectional meet test) run outside the engine's recovery
        # scope and stay reliable.
        self._allreduce_armed = True

    def consume_level_failure(self) -> bool:
        """Return (and clear) whether an unrecovered loss occurred since
        the last :meth:`begin_level`."""
        failed = self._level_failed
        self._level_failed = False
        return failed

    def consume_crashes(self) -> list[CrashEvent]:
        """Return (and clear) the crashes fired since the last call.

        The BFS engine checks this right after the level's termination
        reduction and, when non-empty, runs :meth:`recover_crashes` and
        replays the level from its checkpoint.
        """
        crashed = self._crash_pending
        self._crash_pending = []
        return crashed

    def recover_crashes(
        self, events: list[CrashEvent], checkpoint_nbytes: np.ndarray
    ) -> list[dict[str, object]]:
        """Execute the failover protocol for a batch of crashes.

        For every crashed rank the schedule picks the recovery mode:

        * ``"spare"`` — a reserved spare node adopts the dead rank's slot;
          the buddy streams the dead rank's checkpoint
          (``checkpoint_nbytes[rank]`` bytes) to it over the network, and
          every rank stalls for the transfer (fault time).
        * ``"shrink"`` — the buddy already holds the checkpoint and simply
          absorbs the partition as a cohost; no bulk transfer, but the
          host serializes the absorbed rank's compute from now on (booked
          as fault time by :meth:`charge_compute_many`).

        Raises :class:`FaultError` when the batch is unrecoverable (a
        buddy pair died together, taking the checkpoint with them).
        Returns one summary dict per event for the observability spans.
        """
        faults = self.faults
        obs = self.obs
        try:
            faults.check_recoverable(events)
        except FaultError as exc:
            exc.report = self.fault_report()
            raise
        summaries: list[dict[str, object]] = []
        for event in events:
            buddy = faults.buddy_of(event.rank)
            mode = faults.assign_recovery(event.rank)
            failover_span = (
                obs.begin("failover", cat="phase", rank=event.rank,
                          level=event.level, mode=mode)
                if obs.enabled
                else None
            )
            seconds = 0.0
            nbytes = int(checkpoint_nbytes[event.rank])
            if mode == "spare":
                # the spare powers up in the dead node's torus slot; the
                # buddy streams the checkpoint to it and the machine
                # stalls until the partition is live again
                send, recv, _ = self.network.round_times_arrays(
                    np.array([buddy], dtype=np.int64),
                    np.array([event.rank], dtype=np.int64),
                    np.array([nbytes], dtype=np.int64),
                )
                seconds = float(max(send.max(), recv.max()))
                if seconds > 0.0:
                    self.clock.advance_many(
                        np.full(self.nranks, seconds), kind="fault"
                    )
            if failover_span is not None:
                obs.end(failover_span, seconds=seconds, bytes=nbytes)
            summaries.append(
                {"rank": event.rank, "level": event.level, "phase": event.phase,
                 "mode": mode, "seconds": seconds, "bytes": nbytes}
            )
        return summaries

    def replicate_checkpoint(self, nbytes: np.ndarray) -> float:
        """Replicate each rank's level-boundary checkpoint to its buddy.

        ``nbytes[r]`` bytes travel ``r -> (r+1) % P`` simultaneously; the
        boundary is a collective, so every rank stalls for the slowest
        transfer.  The time lands on the fault bucket (it only exists
        because crash tolerance is on) and the bytes are tallied in the
        report.  Returns the per-boundary stall seconds.
        """
        src = np.arange(self.nranks, dtype=np.int64)
        dst = (src + 1) % self.nranks
        send, recv, _ = self.network.round_times_arrays(src, dst, nbytes)
        seconds = float(np.maximum(send, recv).max())
        obs = self.obs
        span = (
            obs.begin("checkpoint", cat="phase") if obs.enabled else None
        )
        if seconds > 0.0:
            self.clock.advance_many(np.full(self.nranks, seconds), kind="fault")
        self.faults.record_checkpoint(int(nbytes.sum()))
        if span is not None:
            obs.end(span, bytes=int(nbytes.sum()), seconds=seconds)
        return seconds

    def _fire_crashes(self, phase: str) -> None:
        """Fire scheduled crashes for ``phase`` and charge the detection.

        Every surviving rank pays the spec's ``detect_timeout`` (the
        heartbeat/timeout that exposes the dead peer), booked as fault
        time inside a ``crash-detect`` span.
        """
        faults = self.faults
        fired = faults.fire_crashes(phase)
        if not fired:
            return
        obs = self.obs
        span = (
            obs.begin("crash-detect", cat="phase", phase=phase,
                      ranks=[event.rank for event in fired])
            if obs.enabled
            else None
        )
        timeout = faults.spec.detect_timeout
        if timeout > 0.0:
            self.clock.advance_many(np.full(self.nranks, timeout), kind="fault")
        self._crash_pending.extend(fired)
        if span is not None:
            obs.end(span, seconds=timeout)

    def fault_report(self) -> FaultReport | None:
        """Snapshot of the fault layer's report (None when faults are off)."""
        if self.faults is None:
            return None
        return self.faults.snapshot_report(self.clock.max_fault_time)

    # ------------------------------------------------------------------ #
    # reductions (termination checks)
    # ------------------------------------------------------------------ #
    def allreduce_sum(self, values: np.ndarray) -> float:
        """Global sum of one scalar per rank; charges a log2(P)-deep tree.

        Reductions are assumed reliable even under fault injection (the
        real machine runs them on a dedicated collective network) —
        unless the fault spec sets ``collective_faults=True``, in which
        case a scheduled crash may strike the level's termination
        reduction (the first reduction after :meth:`begin_level`).
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.nranks,):
            raise CommunicationError(
                f"allreduce expects one value per rank ({self.nranks}), got {values.shape}"
            )
        self._maybe_collective_crash()
        depth = max(1, math.ceil(math.log2(self.nranks))) if self.nranks > 1 else 0
        cost = depth * self.model.message_time(1, hops=1)
        self.clock.advance_many(np.full(self.nranks, cost), kind="comm")
        self.barrier()
        return float(values.sum())

    def allreduce_flag(self, flags: np.ndarray) -> bool:
        """Global logical OR of one flag per rank."""
        return self.allreduce_sum(np.asarray(flags, dtype=np.float64)) > 0.0

    def allreduce_min(self, values: np.ndarray) -> float:
        """Global minimum of one scalar per rank (same cost as a sum)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.nranks,):
            raise CommunicationError(
                f"allreduce expects one value per rank ({self.nranks}), got {values.shape}"
            )
        self._maybe_collective_crash()
        depth = max(1, math.ceil(math.log2(self.nranks))) if self.nranks > 1 else 0
        cost = depth * self.model.message_time(1, hops=1)
        self.clock.advance_many(np.full(self.nranks, cost), kind="comm")
        self.barrier()
        return float(values.min())

    def _maybe_collective_crash(self) -> None:
        """Fire allreduce-phase crashes on the level's armed reduction."""
        if not self._allreduce_armed:
            return
        self._allreduce_armed = False
        if self.faults is not None and self.faults.spec.collective_faults:
            self._fire_crashes("allreduce")

    # ------------------------------------------------------------------ #
    # compute-side accounting
    # ------------------------------------------------------------------ #
    def charge_compute(
        self,
        rank: int,
        *,
        edges_scanned: int = 0,
        hash_lookups: int = 0,
        updates: int = 0,
    ) -> None:
        """Charge local BFS work on ``rank`` through the machine model.

        Straggler ranks (fault layer) pay their slowdown multiplier; the
        excess over the fault-free cost is booked as fault time.
        """
        self._check_rank(rank)
        if edges_scanned:
            self.stats.record_edges_scanned(edges_scanned)
        seconds = self.model.compute_time(
            edges_scanned=edges_scanned, hash_lookups=hash_lookups, updates=updates
        )
        self.clock.advance(rank, seconds, kind="compute")
        if self.faults is not None:
            extra = seconds * (self.faults.compute_multiplier(rank) - 1.0)
            if extra > 0.0:
                self.clock.advance(rank, extra, kind="fault")
            host = self.faults.host_of(rank)
            if host != rank and seconds > 0.0:
                # shrink cohosting: the surviving host serializes the
                # absorbed rank's compute on its own node
                self.clock.advance(host, seconds, kind="fault")

    def charge_compute_many(
        self,
        *,
        edges_scanned: np.ndarray | None = None,
        hash_lookups: np.ndarray | None = None,
        updates: np.ndarray | None = None,
    ) -> None:
        """Per-rank vector form of :meth:`charge_compute`.

        Each argument is one value per rank (``None`` means all zeros).
        Every rank receives exactly one compute advance (zero-work ranks
        advance by 0.0, which leaves their clocks bit-identical), so one
        bulk call replaces a loop of per-rank :meth:`charge_compute` calls
        without changing any simulated time.
        """
        model = self.model
        zeros = np.zeros(self.nranks, dtype=np.int64)
        e = zeros if edges_scanned is None else np.asarray(edges_scanned)
        h = zeros if hash_lookups is None else np.asarray(hash_lookups)
        u = zeros if updates is None else np.asarray(updates)
        if edges_scanned is not None:
            self.stats.record_edges_scanned(int(e.sum()))
        # Mirrors MachineModel.compute_time term by term (float identity).
        seconds = (
            e * model.edge_scan_cost
            + h * model.hash_lookup_cost
            + u * model.update_cost
        )
        self.clock.advance_many(seconds, kind="compute")
        if self.faults is not None:
            self.clock.advance_many(
                self.faults.compute_fault_extra(seconds), kind="fault"
            )

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise CommunicationError(f"rank {rank} out of range [0, {self.nranks})")
