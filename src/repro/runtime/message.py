"""Message payloads and fixed-length buffers (Section 3.1).

Payloads are always contiguous ``int64`` NumPy arrays of vertex ids — the
buffer-provider fast path from the mpi4py idiom.  The paper's key memory
optimisation is that message buffers have a *fixed* capacity independent of
P; :func:`chunk_payload` splits an oversized payload into capacity-sized
chunks, and :class:`MessageBuffer` enforces the cap on accumulation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BufferOverflowError
from repro.types import VERTEX_DTYPE, as_vertex_array


def chunk_payload(payload: np.ndarray, capacity: int | None) -> list[np.ndarray]:
    """Split ``payload`` into chunks of at most ``capacity`` vertices.

    ``capacity=None`` means unbounded (a single chunk).  An empty payload
    yields an empty list — nothing to send.
    """
    payload = as_vertex_array(payload)
    if payload.size == 0:
        return []
    if capacity is None:
        return [payload]
    if capacity < 1:
        raise BufferOverflowError(f"buffer capacity must be positive, got {capacity}")
    return [payload[i : i + capacity] for i in range(0, payload.size, capacity)]


class MessageBuffer:
    """A fixed-capacity accumulation buffer of vertex ids.

    Mirrors the per-destination staging buffer of the paper's
    implementation: appends must fit the configured capacity, and
    :meth:`drain` hands the content over (resetting the buffer).
    """

    __slots__ = ("capacity", "_store", "_used")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise BufferOverflowError(f"buffer capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._store = np.empty(capacity, dtype=VERTEX_DTYPE)
        self._used = 0

    def __len__(self) -> int:
        return self._used

    @property
    def remaining(self) -> int:
        """Free slots left in the buffer."""
        return self.capacity - self._used

    def append(self, vertices: np.ndarray) -> None:
        """Append ``vertices``; raises :class:`BufferOverflowError` if they don't fit."""
        vertices = as_vertex_array(vertices)
        if vertices.size > self.remaining:
            raise BufferOverflowError(
                f"appending {vertices.size} vertices to a buffer with "
                f"{self.remaining}/{self.capacity} slots free"
            )
        self._store[self._used : self._used + vertices.size] = vertices
        self._used += vertices.size

    def drain(self) -> np.ndarray:
        """Return the buffered vertices (a copy) and reset the buffer."""
        out = self._store[: self._used].copy()
        self._used = 0
        return out
