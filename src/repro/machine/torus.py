"""3D torus interconnect topology (BlueGene/L's main network).

Nodes are identified by linear ids over an ``X x Y x Z`` grid with
wrap-around links in every dimension; routing is dimension-ordered
(e-cube), matching BlueGene/L's deterministic torus routing.  The topology
layer knows nothing about time — costs live in
:class:`repro.machine.bluegene.MachineModel`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError


class Torus3D:
    """An ``X x Y x Z`` torus with bidirectional nearest-neighbour links."""

    __slots__ = ("dims",)

    def __init__(self, x: int, y: int, z: int = 1) -> None:
        if min(x, y, z) < 1:
            raise TopologyError(f"torus dimensions must be positive, got ({x},{y},{z})")
        self.dims = (int(x), int(y), int(z))

    @property
    def num_nodes(self) -> int:
        """Total node count ``X * Y * Z``."""
        x, y, z = self.dims
        return x * y * z

    # ------------------------------------------------------------------ #
    # coordinates
    # ------------------------------------------------------------------ #
    def coords_of(self, node: int) -> tuple[int, int, int]:
        """Coordinates ``(x, y, z)`` of a linear node id (x fastest)."""
        self._check_node(node)
        x_dim, y_dim, _ = self.dims
        x = node % x_dim
        y = (node // x_dim) % y_dim
        z = node // (x_dim * y_dim)
        return (x, y, z)

    def node_of(self, x: int, y: int, z: int = 0) -> int:
        """Linear node id of coordinates ``(x, y, z)``."""
        x_dim, y_dim, z_dim = self.dims
        if not (0 <= x < x_dim and 0 <= y < y_dim and 0 <= z < z_dim):
            raise TopologyError(f"coords ({x},{y},{z}) outside torus {self.dims}")
        return x + x_dim * (y + y_dim * z)

    # ------------------------------------------------------------------ #
    # distances and routing
    # ------------------------------------------------------------------ #
    def hop_distance(self, a: int, b: int) -> int:
        """Minimal hop count between nodes ``a`` and ``b`` (torus metric)."""
        ca, cb = self.coords_of(a), self.coords_of(b)
        return sum(self._dim_distance(ca[d], cb[d], self.dims[d]) for d in range(3))

    def hop_distance_many(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`hop_distance` over arrays of node ids."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        x_dim, y_dim, z_dim = self.dims
        total = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        for coord_a, coord_b, dim in (
            (a % x_dim, b % x_dim, x_dim),
            ((a // x_dim) % y_dim, (b // x_dim) % y_dim, y_dim),
            (a // (x_dim * y_dim), b // (x_dim * y_dim), z_dim),
        ):
            delta = np.abs(coord_a - coord_b)
            total += np.minimum(delta, dim - delta)
        return total

    def route(self, a: int, b: int) -> list[tuple[int, int]]:
        """Dimension-ordered path from ``a`` to ``b`` as directed node pairs.

        Each returned ``(u, v)`` is one traversed physical link.  Used by
        the contention model to count per-link loads within a round.
        """
        path: list[tuple[int, int]] = []
        cur = list(self.coords_of(a))
        target = self.coords_of(b)
        for d in range(3):
            dim = self.dims[d]
            step = self._dim_step(cur[d], target[d], dim)
            while cur[d] != target[d]:
                prev_node = self.node_of(*cur)
                cur[d] = (cur[d] + step) % dim
                path.append((prev_node, self.node_of(*cur)))
        return path

    def neighbors(self, node: int) -> list[int]:
        """The (up to six) distinct nearest neighbours of ``node``."""
        coords = self.coords_of(node)
        result: set[int] = set()
        for d in range(3):
            if self.dims[d] == 1:
                continue
            for step in (-1, 1):
                shifted = list(coords)
                shifted[d] = (shifted[d] + step) % self.dims[d]
                result.add(self.node_of(*shifted))
        result.discard(node)
        return sorted(result)

    @property
    def bisection_links(self) -> int:
        """Number of unidirectional links crossing the best bisection plane."""
        x, y, z = sorted(self.dims, reverse=True)
        # Cut the longest dimension in half; the torus wraps, so two planes
        # of y*z links each cross the cut (or one if that dimension is 2).
        crossing_planes = 2 if x > 2 else 1
        return crossing_planes * y * z

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _dim_distance(a: int, b: int, dim: int) -> int:
        delta = abs(a - b)
        return min(delta, dim - delta)

    @staticmethod
    def _dim_step(a: int, b: int, dim: int) -> int:
        """Direction (+1/-1) of the shorter way around dimension ``dim``."""
        if a == b:
            return 0
        forward = (b - a) % dim
        backward = (a - b) % dim
        return 1 if forward <= backward else -1

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise TopologyError(f"node {node} outside torus of {self.num_nodes} nodes")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Torus3D{self.dims}"
