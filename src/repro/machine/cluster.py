"""MCR-style Linux-cluster model (the paper's comparison platform).

MCR was a Quadrics QsNet (fat-tree) Linux cluster at LLNL.  A fat tree is
modelled as a flat network: every pair of nodes is one "hop" apart, with
the switch crossing folded into a slightly higher alpha.  Used only for the
qualitative platform comparison the paper makes in Section 4.
"""

from __future__ import annotations

import numpy as np

from repro.machine.bluegene import MachineModel
from repro.machine.mapping import TaskMapping
from repro.machine.torus import Torus3D
from repro.types import GridShape

#: MCR (Quadrics QsNet Elan3) calibrated parameters: ~340 MB/s links,
#: ~4.5 us MPI latency, 2.4 GHz Xeons (faster per-element compute than BG/L).
MCR_CLUSTER = MachineModel(
    name="MCR",
    alpha=4.5e-6,
    per_hop=5.0e-8,
    bandwidth=340e6,
    bytes_per_vertex=8,
    edge_scan_cost=5.0e-9,
    hash_lookup_cost=8.0e-8,
    update_cost=1.5e-8,
)


class FlatNetwork(Torus3D):
    """A single-switch (fat-tree-abstracted) network.

    Every distinct pair of nodes is one hop apart, and each transfer uses
    one virtual link per *endpoint pair*, so contention only appears when
    several messages share an endpoint — a reasonable first-order fat-tree
    abstraction.
    """

    def __init__(self, num_nodes: int) -> None:
        super().__init__(num_nodes, 1, 1)

    def hop_distance(self, a: int, b: int) -> int:
        self._check_node(a)
        self._check_node(b)
        return 0 if a == b else 1

    def hop_distance_many(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        return (a != b).astype(np.int64)

    def route(self, a: int, b: int) -> list[tuple[int, int]]:
        self._check_node(a)
        self._check_node(b)
        return [] if a == b else [(a, b)]


def flat_network_for(grid: GridShape) -> TaskMapping:
    """Identity mapping of the mesh onto a :class:`FlatNetwork`."""
    return TaskMapping(grid, FlatNetwork(grid.size), np.arange(grid.size, dtype=np.int64))
