"""Task mapping: placing the logical 2D processor mesh onto the physical torus.

Section 3.2.1 / Figure 1 of the paper: the ``Lx x Ly`` logical processor
array is divided into ``wc x wr`` planes, and each plane is mapped to one
``z``-plane of the ``wc x wr x 4`` torus such that planes in the same
logical column land on *adjacent* physical planes.  The effect is that the
ranks of a processor-column (the expand communicator) sit on a short
physical ring, and the ranks of a processor-row (the fold communicator)
form a small grid spanning several planes.

:func:`planar_mapping` generalises that construction to any torus whose
node count matches the mesh; :func:`row_major_mapping` is the naive
baseline used by the mapping ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.machine.torus import Torus3D
from repro.types import GridShape


class TaskMapping:
    """An assignment of logical mesh ranks to physical torus nodes."""

    __slots__ = ("grid", "torus", "rank_to_node")

    def __init__(self, grid: GridShape, torus: Torus3D, rank_to_node: np.ndarray) -> None:
        rank_to_node = np.asarray(rank_to_node, dtype=np.int64)
        if rank_to_node.shape != (grid.size,):
            raise TopologyError(
                f"mapping must cover all {grid.size} ranks, got shape {rank_to_node.shape}"
            )
        if grid.size > torus.num_nodes:
            raise TopologyError(
                f"mesh of {grid.size} ranks does not fit torus of {torus.num_nodes} nodes"
            )
        if np.unique(rank_to_node).shape[0] != grid.size:
            raise TopologyError("mapping assigns two ranks to the same node")
        if rank_to_node.min() < 0 or rank_to_node.max() >= torus.num_nodes:
            raise TopologyError("mapping contains out-of-range node ids")
        self.grid = grid
        self.torus = torus
        self.rank_to_node = rank_to_node

    def node_of(self, rank: int) -> int:
        """Physical node hosting logical ``rank``."""
        return int(self.rank_to_node[rank])

    def hops(self, rank_a: int, rank_b: int) -> int:
        """Physical hop distance between two logical ranks."""
        return self.torus.hop_distance(self.node_of(rank_a), self.node_of(rank_b))

    # ------------------------------------------------------------------ #
    # quality metrics (used by the mapping ablation)
    # ------------------------------------------------------------------ #
    def mean_group_hops(self, group: list[int]) -> float:
        """Mean pairwise hop distance within a communicator ``group``."""
        if len(group) < 2:
            return 0.0
        nodes = self.rank_to_node[np.asarray(group)]
        a = np.repeat(nodes, len(group))
        b = np.tile(nodes, len(group))
        dists = self.torus.hop_distance_many(a, b)
        return float(dists.sum()) / (len(group) * (len(group) - 1))

    def ring_hops(self, group: list[int]) -> int:
        """Total hops of the ring ``group[0] -> group[1] -> ... -> group[0]``."""
        if len(group) < 2:
            return 0
        total = 0
        for idx, rank in enumerate(group):
            total += self.hops(rank, group[(idx + 1) % len(group)])
        return total

    def column_ring_hops(self) -> float:
        """Mean ring length (hops) over all processor-columns (expand rings)."""
        cols = [self.grid.col_members(c) for c in range(self.grid.cols)]
        return float(np.mean([self.ring_hops(g) for g in cols]))

    def row_ring_hops(self) -> float:
        """Mean ring length (hops) over all processor-rows (fold rings)."""
        rows = [self.grid.row_members(r) for r in range(self.grid.rows)]
        return float(np.mean([self.ring_hops(g) for g in rows]))


def row_major_mapping(grid: GridShape, torus: Torus3D) -> TaskMapping:
    """Naive mapping: logical rank ``r`` on physical node ``r``."""
    return TaskMapping(grid, torus, np.arange(grid.size, dtype=np.int64))


def planar_mapping(grid: GridShape, torus: Torus3D) -> TaskMapping:
    """The paper's Figure 1 mapping, generalised.

    The logical ``R x C`` mesh is cut into ``Z`` tiles of consecutive
    logical columns (``Z`` = torus depth); tile ``t`` occupies physical
    plane ``z = t``, filled in column-major snake order so consecutive
    logical rows are physically adjacent.  Consecutive tiles hold
    consecutive column ranges, so a processor-row spans adjacent planes
    (short fold grid) and a processor-column stays inside one or two planes
    (short expand ring) — the property Figure 1 is after.

    Requires ``R * C == X * Y * Z`` and ``C % Z == 0``; fall back to
    :func:`row_major_mapping` when the shapes are incompatible.
    """
    x_dim, y_dim, z_dim = torus.dims
    R, C = grid.rows, grid.cols
    if R * C != torus.num_nodes or C % z_dim != 0:
        return row_major_mapping(grid, torus)
    cols_per_plane = C // z_dim
    if R * cols_per_plane != x_dim * y_dim:
        return row_major_mapping(grid, torus)

    rank_to_node = np.empty(grid.size, dtype=np.int64)
    for rank in range(grid.size):
        i, j = grid.coords_of(rank)
        plane = j // cols_per_plane
        local_col = j % cols_per_plane
        # Fill each plane column-major with a snake over logical rows so
        # that both directions stay physically near.
        linear = local_col * R + (i if local_col % 2 == 0 else R - 1 - i)
        px = linear % x_dim
        py = linear // x_dim
        rank_to_node[rank] = torus.node_of(px, py, plane)
    return TaskMapping(grid, torus, rank_to_node)
