"""Machine models: 3D torus topology, task mapping, BlueGene/L cost model."""

from repro.machine.torus import Torus3D
from repro.machine.mapping import TaskMapping, row_major_mapping, planar_mapping
from repro.machine.bluegene import MachineModel, BLUEGENE_L, bluegene_l_torus_for
from repro.machine.cluster import MCR_CLUSTER, FlatNetwork, flat_network_for

__all__ = [
    "Torus3D",
    "TaskMapping",
    "row_major_mapping",
    "planar_mapping",
    "MachineModel",
    "BLUEGENE_L",
    "bluegene_l_torus_for",
    "MCR_CLUSTER",
    "FlatNetwork",
    "flat_network_for",
]
