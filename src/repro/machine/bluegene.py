"""BlueGene/L machine parameters and the simulated cost model.

The paper reports times from a real 32,768-node BlueGene/L; we reproduce
the *shape* of those results with an explicit alpha-beta-hop cost model
whose constants come from BlueGene/L's published characteristics
(Section 4.1 of the paper and the BG/L system papers):

* torus link bandwidth 1.4 Gbit/s = 175 MB/s per direction,
* per-hop latency well under a microsecond (cut-through routing),
* MPI-level point-to-point latency a few microseconds,
* 700 MHz PowerPC 440 cores, and a BFS that is memory-bound: the paper's
  profiling found the global-to-local *hash lookup* on received vertices
  dominating, so the compute model charges per hash lookup, per scanned
  edge, and per vertex update.

Absolute seconds from this model are *not* expected to match the paper's
testbed; crossovers and scaling exponents are (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.machine.torus import Torus3D
from repro.utils.validation import check_positive


@dataclass(frozen=True, slots=True)
class MachineModel:
    """Cost parameters of a distributed-memory machine.

    Times returned by the methods are seconds of *simulated* time.
    """

    name: str
    #: per-message software latency (MPI alpha), seconds
    alpha: float
    #: per-hop wire/router latency, seconds
    per_hop: float
    #: link bandwidth, bytes per second per direction
    bandwidth: float
    #: bytes used to encode one vertex id on the wire
    bytes_per_vertex: int
    #: seconds per adjacency entry scanned during frontier expansion
    edge_scan_cost: float
    #: seconds per global-to-local lookup on a received vertex (the paper's
    #: dominant hashing cost)
    hash_lookup_cost: float
    #: seconds per level-label update
    update_cost: float

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        check_positive("bandwidth", self.bandwidth)
        check_positive("bytes_per_vertex", self.bytes_per_vertex)
        for field in ("per_hop", "edge_scan_cost", "hash_lookup_cost", "update_cost"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")

    # ------------------------------------------------------------------ #
    # communication costs
    # ------------------------------------------------------------------ #
    def message_time(self, num_vertices: int, hops: int = 1, contention: float = 1.0) -> float:
        """Time to move one message of ``num_vertices`` ids over ``hops`` links.

        ``contention`` >= 1 divides the effective bandwidth (several
        messages sharing a link within a round).
        """
        if num_vertices < 0:
            raise ValueError("message length must be non-negative")
        return self.message_time_bytes(
            num_vertices * self.bytes_per_vertex, hops=hops, contention=contention
        )

    def message_time_bytes(
        self, nbytes: int, hops: int = 1, contention: float = 1.0
    ) -> float:
        """Time to move ``nbytes`` wire bytes over ``hops`` links.

        The byte-level entry point used when a :mod:`repro.wire` codec has
        already determined the encoded message size; :meth:`message_time`
        is the uncompressed (``bytes_per_vertex``) special case.
        """
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        return self.alpha + hops * self.per_hop + contention * nbytes / self.bandwidth

    # ------------------------------------------------------------------ #
    # computation costs
    # ------------------------------------------------------------------ #
    def compute_time(
        self,
        edges_scanned: int = 0,
        hash_lookups: int = 0,
        updates: int = 0,
    ) -> float:
        """Time for local BFS work: edge-list scans, hash lookups, label updates."""
        return (
            edges_scanned * self.edge_scan_cost
            + hash_lookups * self.hash_lookup_cost
            + updates * self.update_cost
        )

    def with_overrides(self, **kwargs) -> "MachineModel":
        """Copy with some parameters replaced (for sensitivity ablations)."""
        return replace(self, **kwargs)


#: BlueGene/L-calibrated parameters (see module docstring for sources).
BLUEGENE_L = MachineModel(
    name="BlueGene/L",
    alpha=3.0e-6,
    per_hop=1.0e-7,
    bandwidth=175e6,
    bytes_per_vertex=8,
    edge_scan_cost=2.0e-8,
    hash_lookup_cost=3.0e-7,
    update_cost=5.0e-8,
)


def bluegene_l_torus_for(nranks: int) -> Torus3D:
    """A plausible BG/L-style torus shape hosting ``nranks`` nodes.

    Picks the most cube-like factorisation ``X >= Y >= Z`` of ``nranks``
    (BG/L partitions were near-cubic blocks of the 64x32x32 machine).
    """
    check_positive("nranks", nranks)
    best: tuple[int, int, int] | None = None
    for z in range(1, int(round(nranks ** (1 / 3))) + 1):
        if nranks % z:
            continue
        rest = nranks // z
        for y in range(z, int(rest**0.5) + 1):
            if rest % y:
                continue
            x = rest // y
            if x < y:
                continue
            candidate = (x, y, z)
            if best is None or _aspect(candidate) < _aspect(best):
                best = candidate
    if best is None:
        best = (nranks, 1, 1)
    return Torus3D(*best)


def _aspect(dims: tuple[int, int, int]) -> float:
    """Aspect ratio metric: 1.0 for a perfect cube, larger when skewed."""
    x, y, z = dims
    return max(x, y, z) / min(x, y, z)
