"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment, machine, or partition configuration is invalid."""


class PartitionError(ReproError):
    """A graph partitioning operation failed or was queried inconsistently."""


class CommunicationError(ReproError):
    """A virtual-runtime communication step was used incorrectly."""


class BufferOverflowError(CommunicationError):
    """A fixed-length message buffer (Section 3.1) would be exceeded.

    The paper caps message buffers at a fixed length derived from the
    O(n/P) bound; the runtime raises this when a single un-chunked send
    exceeds the configured cap.
    """


class CodecError(CommunicationError):
    """A wire codec (`repro.wire`) was misused or fed malformed bytes.

    Raised for unknown codec names, payloads outside a codec's domain
    (e.g. an unsorted array handed to the bitmap codec), and truncated or
    corrupt encoded buffers.
    """


class FaultError(CommunicationError):
    """The fault-recovery machinery could not restore a consistent state.

    Raised when a message chunk is lost for good (retry budget exhausted)
    and level checkpointing is disabled, when a level keeps failing after
    ``max_level_retries`` re-executions, or when a rank crash is
    unrecoverable (checkpoint buddies died together).  ``report`` carries
    the structured :class:`repro.faults.FaultReport` at failure time when
    the raiser had one (``None`` otherwise), so harnesses can fail loudly
    with the full fault tally instead of a bare message.
    """

    def __init__(self, message: str, *, report=None) -> None:
        super().__init__(message)
        self.report = report


class TopologyError(ConfigurationError):
    """A processor-mesh or torus topology is malformed or incompatible."""


class SearchError(ReproError):
    """A BFS invocation was malformed (e.g. source vertex out of range)."""
