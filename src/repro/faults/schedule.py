"""Per-run sampled fault decisions: :class:`FaultSchedule`.

The schedule is the stateful object the communicator consults on every
wire message and at every crash/recovery boundary.  Link degradation,
stragglers, the dying link, and the crash plan are sampled once at
construction from named streams (stable in ``spec.seed`` and ``nranks``
only).  Transient drops come from the keyed
:class:`~repro.faults.crash.KeyedDropStream`: deterministic per link and
transmission index, independent of execution order — which is what makes
the single-process simulator and the multi-process SPMD backend agree
byte-for-byte, and what gives a replayed level fresh draws.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, FaultError
from repro.faults.crash import CrashEvent, KeyedDropStream
from repro.faults.report import FaultReport
from repro.faults.spec import FaultSpec

from dataclasses import replace


class FaultSchedule:
    """Per-run sampled fault decisions, consulted by the communicator."""

    __slots__ = ("spec", "nranks", "report", "_drops", "_link_multipliers",
                 "_compute_multipliers", "_down_pair", "_level",
                 "_crash_events", "_crash_fired", "_dead", "_spares_used",
                 "_host", "_has_cohosting")

    def __init__(self, spec: FaultSpec, nranks: int) -> None:
        # Deferred so that repro.types -> repro.faults does not pull in the
        # repro.utils package (whose __init__ imports repro.types back).
        from repro.utils.rng import RngFactory

        if nranks < 1:
            raise ConfigurationError(f"need at least one rank, got {nranks}")
        self.spec = spec
        self.nranks = int(nranks)
        self.report = FaultReport()
        factory = RngFactory(spec.seed)
        self._drops = KeyedDropStream(spec.seed, spec.drop_rate, spec.max_retries)
        self._level = 0

        #: degraded directed rank pairs -> wire-cost multiplier
        self._link_multipliers: dict[tuple[int, int], float] = {}
        if spec.degraded_link_rate > 0 and spec.degradation_factor > 1:
            link_rng = factory.named("faults:links")
            for src in range(nranks):
                for dst in range(nranks):
                    if src != dst and link_rng.random() < spec.degraded_link_rate:
                        self._link_multipliers[(src, dst)] = spec.degradation_factor
        self.report.degraded_links = len(self._link_multipliers)

        self._compute_multipliers = np.ones(nranks, dtype=np.float64)
        if spec.straggler_rate > 0 and spec.straggler_slowdown > 1:
            straggler_rng = factory.named("faults:stragglers")
            mask = straggler_rng.random(nranks) < spec.straggler_rate
            self._compute_multipliers[mask] = spec.straggler_slowdown
        self.report.straggler_ranks = int((self._compute_multipliers > 1).sum())

        self._down_pair: tuple[int, int] | None = None
        if spec.down_level is not None and nranks > 1:
            down_rng = factory.named("faults:down")
            src = int(down_rng.integers(nranks))
            dst = int(down_rng.integers(nranks - 1))
            self._down_pair = (src, dst if dst < src else dst + 1)
            self.report.link_down = self._down_pair

        # The crash plan: per-rank coin at crash_rate, a uniform level in
        # [0, crash_max_level], and the phase the crash strikes in (the
        # allreduce phase only when the spec drops the reliable-collective
        # assumption).  A rank crashes at most once per run.
        events: list[CrashEvent] = []
        if spec.crash_rate > 0 and nranks > 1:
            crash_rng = factory.named("faults:crashes")
            for rank in range(nranks):
                if crash_rng.random() < spec.crash_rate:
                    level = int(crash_rng.integers(spec.crash_max_level + 1))
                    phase = "exchange"
                    if spec.collective_faults and crash_rng.random() < 0.5:
                        phase = "allreduce"
                    events.append(CrashEvent(rank=rank, level=level, phase=phase))
        self._crash_events: tuple[CrashEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.level, e.rank))
        )
        self._crash_fired: set[int] = set()
        #: ranks currently dead (crashed, recovery not yet executed)
        self._dead: set[int] = set()
        self._spares_used = 0
        #: physical host of each logical rank (shrink recovery cohosts)
        self._host = np.arange(nranks, dtype=np.int64)
        self._has_cohosting = False

    # ------------------------------------------------------------------ #
    # queries made by the communicator
    # ------------------------------------------------------------------ #
    def begin_level(self, level: int) -> None:
        """Tell the schedule which BFS level is executing (link-down gate)."""
        self._level = int(level)

    def link_multiplier(self, src: int, dst: int) -> float:
        """Wire-cost multiplier for messages ``src -> dst`` at the current level."""
        if (
            self._down_pair == (src, dst)
            and self.spec.down_level is not None
            and self._level >= self.spec.down_level
        ):
            return self.spec.down_detour_factor
        return self._link_multipliers.get((src, dst), 1.0)

    def compute_multiplier(self, rank: int) -> float:
        """Compute-time multiplier of ``rank`` (> 1 for stragglers)."""
        return float(self._compute_multipliers[rank])

    @property
    def compute_multipliers(self) -> np.ndarray:
        """Per-rank compute-time multipliers (read-only view for bulk charging)."""
        return self._compute_multipliers

    def compute_fault_extra(self, seconds: np.ndarray) -> np.ndarray:
        """Per-rank fault seconds riding on a bulk compute charge.

        Straggler ranks pay their slowdown excess; after a shrink
        failover the surviving host additionally serializes every
        absorbed rank's compute (the cohost model: one node, two
        partitions, no extra parallelism).
        """
        extra = seconds * (self._compute_multipliers - 1.0)
        if self._has_cohosting:
            absorbed = self._host != np.arange(self.nranks)
            if absorbed.any():
                hosted = np.zeros(self.nranks, dtype=np.float64)
                np.add.at(hosted, self._host[absorbed], seconds[absorbed])
                extra = extra + hosted
        return extra

    def host_of(self, rank: int) -> int:
        """Physical host of logical ``rank`` (differs after shrink recovery)."""
        return int(self._host[rank])

    def transmission_plan(self, src: int, dst: int) -> tuple[int, bool]:
        """Decide the fate of one chunk ``src -> dst``.

        Returns ``(transmissions, delivered)`` and tallies the report;
        the decision comes from the keyed drop stream (see the module
        docstring).
        """
        transmissions, delivered = self._drops.plan(src, dst)
        drops = transmissions - 1 if delivered else transmissions
        if drops:
            self.report.injected += drops
            self.report.retries += transmissions - 1
            if delivered:
                self.report.recovered += 1
            else:
                self.report.unrecovered += 1
        return transmissions, delivered

    def retry_penalty(self, drops: int) -> float:
        """Timeout seconds the sender waits to detect ``drops`` losses."""
        spec = self.spec
        return spec.retry_timeout * sum(spec.backoff**i for i in range(drops))

    # ------------------------------------------------------------------ #
    # crash lifecycle
    # ------------------------------------------------------------------ #
    @property
    def crash_events(self) -> tuple[CrashEvent, ...]:
        """The full construction-sampled crash plan (read-only)."""
        return self._crash_events

    @property
    def dead_ranks(self) -> frozenset[int]:
        """Ranks that crashed and have not executed recovery yet."""
        return frozenset(self._dead)

    def fire_crashes(self, phase: str) -> list[CrashEvent]:
        """Fire (once) every crash scheduled for the current level/``phase``."""
        fired = [
            event
            for event in self._crash_events
            if event.level == self._level
            and event.phase == phase
            and event.rank not in self._crash_fired
        ]
        for event in fired:
            self._crash_fired.add(event.rank)
            self._dead.add(event.rank)
        self.report.crashes += len(fired)
        return fired

    def buddy_of(self, rank: int) -> int:
        """The partner rank holding ``rank``'s level-boundary checkpoint."""
        return (rank + 1) % self.nranks

    def check_recoverable(self, events: list[CrashEvent]) -> None:
        """Raise :class:`FaultError` when a crash batch is unrecoverable.

        The buddy ring replicates rank ``r``'s checkpoint onto
        ``(r+1) % P``; when both die in the same level the checkpoint is
        gone with them and no recovery mode can reconstruct the
        partition.
        """
        ranks = {event.rank for event in events}
        for event in events:
            buddy = self.buddy_of(event.rank)
            if buddy in ranks:
                raise FaultError(
                    f"unrecoverable crash at level {event.level}: ranks "
                    f"{event.rank} and {buddy} are checkpoint buddies and "
                    "died together, so the buddy checkpoint is lost"
                )

    def assign_recovery(self, rank: int) -> str:
        """Pick and register the failover mode for crashed ``rank``.

        Returns ``"spare"`` (a reserved spare adopts the slot) while the
        spec's spare pool lasts, falling back to ``"shrink"`` (the buddy
        absorbs the partition as a cohost) otherwise.
        """
        self._dead.discard(rank)
        spec = self.spec
        if spec.recovery == "spare" and self._spares_used < spec.spare_ranks:
            self._spares_used += 1
            self.report.spare_failovers += 1
            return "spare"
        host = int(self._host[self.buddy_of(rank)])
        self._host[rank] = host
        # anything this rank was hosting migrates with it
        self._host[self._host == rank] = host
        self._has_cohosting = True
        self.report.shrink_failovers += 1
        return "shrink"

    # ------------------------------------------------------------------ #
    # bookkeeping shared with the engines
    # ------------------------------------------------------------------ #
    def record_rollback(self, wasted_seconds: float) -> None:
        """Count one level rollback that threw away ``wasted_seconds``."""
        self.report.rollbacks += 1
        self.report.rollback_seconds += float(wasted_seconds)

    def record_replay(self, wasted_seconds: float) -> None:
        """Count one crash-triggered level replay (wasted attempt seconds)."""
        self.report.replayed_levels += 1
        self.report.rollback_seconds += float(wasted_seconds)

    def record_checkpoint(self, nbytes: int) -> None:
        """Tally one level boundary's buddy-replication traffic."""
        self.report.checkpoint_bytes += int(nbytes)

    def snapshot_report(self, overhead_seconds: float) -> FaultReport:
        """Freeze the current report with the clock's fault-time total."""
        return replace(self.report, overhead_seconds=float(overhead_seconds))


__all__ = ["FaultSchedule"]
