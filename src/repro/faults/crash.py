"""Crash events and the keyed (order-independent) drop stream.

Two building blocks shared by the simulator's
:class:`repro.faults.FaultSchedule` and the SPMD backend's per-process
workers:

* :class:`CrashEvent` — one scheduled rank crash (rank, level, phase),
  sampled at schedule construction.
* :class:`KeyedDropStream` — per-transmission drop decisions drawn from a
  splitmix64 hash of ``(seed, src, dst, k)`` where ``k`` is the pair's
  monotone transmission counter.  Unlike a shared sequential stream, the
  draw for the k-th transmission on a link does not depend on the order
  in which *other* links send — so P independent SPMD processes make
  byte-identical decisions to the single-process simulator, and a
  replayed level (whose counters have advanced) sees fresh draws.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK = (1 << 64) - 1
#: stream tag separating drop draws from any other keyed consumer
_DROP_TAG = 0x9E6B_1F2A_D7C3_5E81


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a high-quality 64-bit mixing function."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def keyed_uniform(seed: int, src: int, dst: int, k: int) -> float:
    """Deterministic uniform in ``[0, 1)`` for transmission ``k`` on a link."""
    h = _mix64(seed ^ _DROP_TAG)
    h = _mix64(h ^ src)
    h = _mix64(h ^ dst)
    h = _mix64(h ^ k)
    return (h >> 11) * (1.0 / (1 << 53))


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """One scheduled whole-rank crash."""

    #: the rank that dies
    rank: int
    #: BFS level at which the crash strikes
    level: int
    #: where in the level it strikes: ``"exchange"`` or ``"allreduce"``
    phase: str


class KeyedDropStream:
    """Stateful per-link transmission-drop decisions (see module docstring).

    Each ``(src, dst)`` pair carries a monotone counter of draws made, so
    the decision sequence on a link is a pure function of the spec seed
    and how many transmissions that link has attempted — independent of
    every other link and of which process asks.
    """

    __slots__ = ("seed", "drop_rate", "max_retries", "_counters")

    def __init__(self, seed: int, drop_rate: float, max_retries: int) -> None:
        self.seed = int(seed)
        self.drop_rate = float(drop_rate)
        self.max_retries = int(max_retries)
        self._counters: dict[tuple[int, int], int] = {}

    def plan(self, src: int, dst: int) -> tuple[int, bool]:
        """Fate of one chunk ``src -> dst``: ``(transmissions, delivered)``.

        Each transmission is dropped independently with ``drop_rate``; a
        drop triggers a retransmission until the chunk arrives or
        ``max_retries`` retries are spent.  Every draw advances the
        pair's counter (a successful transmission consumes one draw too).
        """
        if self.drop_rate <= 0.0:
            return 1, True
        key = (src, dst)
        k = self._counters.get(key, 0)
        drops = 0
        while (
            drops <= self.max_retries
            and keyed_uniform(self.seed, src, dst, k + drops) < self.drop_rate
        ):
            drops += 1
        delivered = drops <= self.max_retries
        transmissions = drops + 1 if delivered else drops
        self._counters[key] = k + transmissions
        return transmissions, delivered


__all__ = ["CrashEvent", "KeyedDropStream", "keyed_uniform"]
