"""The graceful-degradation summary: :class:`FaultReport`.

One report per run, filled in by :class:`repro.faults.FaultSchedule`
while the communicator and the BFS engines consult it, and snapshotted
into :class:`repro.bfs.result.BfsResult` when the search finishes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class FaultReport:
    """What the fault layer did to one run (graceful-degradation summary)."""

    #: transmissions lost (every individual drop, including on retries)
    injected: int = 0
    #: retransmissions performed after a drop
    retries: int = 0
    #: chunks eventually delivered after at least one drop
    recovered: int = 0
    #: chunks lost for good (retry budget exhausted) — forces a rollback
    unrecovered: int = 0
    #: BFS level re-executions after unrecovered losses
    rollbacks: int = 0
    #: directed rank pairs with a degraded link
    degraded_links: int = 0
    #: ranks with a compute slowdown
    straggler_ranks: int = 0
    #: the rank pair whose link goes permanently down (None = none)
    link_down: tuple[int, int] | None = None
    #: ranks that crashed during the run
    crashes: int = 0
    #: crashes recovered by a reserved spare adopting the dead rank's slot
    spare_failovers: int = 0
    #: crashes recovered by the buddy absorbing the dead rank's partition
    shrink_failovers: int = 0
    #: BFS level re-executions after crash failovers
    replayed_levels: int = 0
    #: bytes replicated to buddy ranks at level boundaries
    checkpoint_bytes: int = 0
    #: slowest rank's retry/timeout/straggler/recovery overhead, simulated seconds
    overhead_seconds: float = 0.0
    #: simulated seconds spent on level executions that were rolled back
    rollback_seconds: float = 0.0

    @property
    def failovers(self) -> int:
        """Total crash failovers, whatever the recovery mode."""
        return self.spare_failovers + self.shrink_failovers

    @property
    def added_seconds(self) -> float:
        """Total simulated seconds attributable to faults."""
        return self.overhead_seconds + self.rollback_seconds

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"faults: {self.injected} injected, {self.retries} retries, "
            f"{self.recovered} recovered, {self.unrecovered} unrecovered, "
            f"{self.rollbacks} rollbacks, +{self.added_seconds:.6f}s simulated"
        )
        if self.crashes:
            text += (
                f"; {self.crashes} crashes ({self.spare_failovers} spare / "
                f"{self.shrink_failovers} shrink failovers), "
                f"{self.replayed_levels} replayed levels, "
                f"{self.checkpoint_bytes} checkpoint bytes"
            )
        return text


__all__ = ["FaultReport"]
