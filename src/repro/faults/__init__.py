"""Deterministic fault injection and recovery (`repro.faults`).

The paper's testbed is a 32,768-node BlueGene/L; at that scale the
interesting question is not whether the machine is perfect but how the
algorithm behaves when it is not — stragglers, degraded links, dropped
messages, and whole-node failures (see Buluç & Madduri's survey of
distributed-memory BFS for the modern version of the same concern).
This package injects those faults into the virtual runtime
*deterministically*: every decision is drawn from a seeded stream, so
identical seeds and schedules reproduce byte-identical fault counts and
simulated times.

Layout (split from the original single module):

* :mod:`repro.faults.spec` — :class:`FaultSpec`, the frozen declarative
  description of a fault workload, and the named :data:`FAULT_PRESETS`.
* :mod:`repro.faults.schedule` — :class:`FaultSchedule`, the per-run
  stateful object the communicator consults on every wire message and at
  every crash boundary.
* :mod:`repro.faults.report` — :class:`FaultReport`, the
  graceful-degradation summary attached to every faulted result.
* :mod:`repro.faults.crash` — :class:`CrashEvent` and the keyed
  order-independent drop stream shared with the SPMD backend.
* :mod:`repro.faults.validate` — the end-to-end result validator
  (serial-BFS oracle, parent tree, message conservation, clock
  monotonicity).  Imported on demand; not re-exported here.
* :mod:`repro.faults.chaos` — randomized fault-schedule sampling and the
  chaos sweep used by ``harness/chaos_sweep.py``.  Imported on demand.

Semantics on the wire (implemented in
:meth:`repro.runtime.comm.Communicator.exchange`):

* A *transient drop* loses one transmission of one message chunk.  The
  sender detects it by timeout (``retry_timeout * backoff**i`` simulated
  seconds for the i-th retry) and retransmits, up to ``max_retries``
  times; every wasted transmission and timeout is charged to the clocks
  as fault time.  A chunk that exhausts its retries is *unrecovered*:
  the data is lost and the BFS level must roll back to its checkpoint
  (see :class:`repro.bfs.level_sync.LevelSyncEngine`).
* A *degraded link* multiplies the wire cost of every message between
  one directed rank pair.
* A *permanent link-down* (from level ``down_level`` on) does not lose
  data — traffic is assumed rerouted around the dead link — but pays the
  detour: the pair's cost multiplier becomes ``down_detour_factor``.
* A *straggler* multiplies a rank's compute time; the excess is booked
  as fault time.
* A *rank crash* (``crash_rate > 0``) kills a whole rank at a seeded
  level and phase.  Survivors detect it by timeout, recover the dead
  rank's partition from its buddy's level-boundary checkpoint (spare
  takeover or shrink absorption), and replay the level.  See
  ``docs/FAULTS.md`` for the full protocol and cost accounting.

Reductions (``allreduce_*``) are assumed reliable — as on the real
machine's dedicated collective network — unless the spec sets
``collective_faults=True``, which lets crashes strike mid-reduction.
"""

from __future__ import annotations

from repro.faults.crash import CrashEvent, KeyedDropStream
from repro.faults.report import FaultReport
from repro.faults.schedule import FaultSchedule
from repro.faults.spec import FAULT_PRESETS, FaultSpec

__all__ = [
    "FAULT_PRESETS",
    "CrashEvent",
    "FaultReport",
    "FaultSchedule",
    "FaultSpec",
    "KeyedDropStream",
]
