"""Declarative fault workloads: :class:`FaultSpec` and the named presets.

A spec describes *what can go wrong* — wire-level faults (transient
drops, degraded links, a permanent link-down, stragglers) and, since the
crash-tolerance work, whole-rank crashes with their recovery policy.
Everything is seeded; the spec itself is frozen and hashable so it can
ride inside :class:`repro.types.SystemSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Declarative, seeded description of a fault-injection workload.

    All rates are probabilities in ``[0, 1]``; all multipliers are
    ``>= 1``.  The default instance injects nothing (and a ``None``
    spec everywhere means "fault layer disabled, zero overhead").
    """

    #: seed of every random fault decision (drops, link/straggler choice)
    seed: int = 0
    #: probability that any single transmission of a message chunk is lost
    drop_rate: float = 0.0
    #: fraction of directed rank pairs whose link is degraded
    degraded_link_rate: float = 0.0
    #: wire-cost multiplier on degraded links
    degradation_factor: float = 2.0
    #: fraction of ranks that straggle
    straggler_rate: float = 0.0
    #: compute-time multiplier on straggler ranks
    straggler_slowdown: float = 2.0
    #: BFS level at which one sampled link goes permanently down (None = never)
    down_level: int | None = None
    #: detour cost multiplier for traffic rerouted around the dead link
    down_detour_factor: float = 3.0
    #: retransmissions attempted per dropped chunk before giving up
    max_retries: int = 3
    #: simulated seconds to detect the first lost transmission
    retry_timeout: float = 5.0e-5
    #: timeout growth factor per further retry (exponential backoff)
    backoff: float = 2.0
    #: level re-executions allowed after unrecovered losses before erroring
    max_level_retries: int = 25
    #: per-rank probability of crashing once during the run (1.0 = all crash)
    crash_rate: float = 0.0
    #: crash levels are sampled uniformly from ``[0, crash_max_level]``
    crash_max_level: int = 4
    #: failover policy after a crash: ``"spare"`` or ``"shrink"``
    recovery: str = "spare"
    #: reserved spare ranks (spare mode falls back to shrink when exhausted)
    spare_ranks: int = 1
    #: simulated seconds every rank spends detecting a dead peer
    detect_timeout: float = 5.0e-4
    #: allow crashes to strike during reductions too (drops the
    #: "collective network is reliable" assumption)
    collective_faults: bool = False

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigurationError(f"fault seed must be non-negative, got {self.seed}")
        for name in ("drop_rate", "degraded_link_rate", "straggler_rate", "crash_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.drop_rate >= 1.0:
            raise ConfigurationError("drop_rate must be < 1 (nothing would ever arrive)")
        for name in ("degradation_factor", "straggler_slowdown", "down_detour_factor",
                     "backoff"):
            if getattr(self, name) < 1.0:
                raise ConfigurationError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.max_retries < 0 or self.max_level_retries < 0:
            raise ConfigurationError("retry counts must be non-negative")
        if self.retry_timeout < 0:
            raise ConfigurationError("retry_timeout must be non-negative")
        if self.down_level is not None and self.down_level < 0:
            raise ConfigurationError(f"down_level must be non-negative, got {self.down_level}")
        if self.crash_max_level < 0:
            raise ConfigurationError(
                f"crash_max_level must be non-negative, got {self.crash_max_level}"
            )
        if self.recovery not in ("spare", "shrink"):
            raise ConfigurationError(
                f"recovery must be 'spare' or 'shrink', got {self.recovery!r}"
            )
        if self.spare_ranks < 0:
            raise ConfigurationError(f"spare_ranks must be non-negative, got {self.spare_ranks}")
        if self.detect_timeout < 0:
            raise ConfigurationError("detect_timeout must be non-negative")

    @property
    def active(self) -> bool:
        """Whether this spec can inject any fault at all."""
        return (
            self.drop_rate > 0
            or (self.degraded_link_rate > 0 and self.degradation_factor > 1)
            or (self.straggler_rate > 0 and self.straggler_slowdown > 1)
            or self.down_level is not None
            or self.crash_rate > 0
        )

    @property
    def needs_checkpoint(self) -> bool:
        """Whether a run under this spec can lose state (and must checkpoint)."""
        return self.drop_rate > 0 or self.crash_rate > 0

    @property
    def buddy_checkpointing(self) -> bool:
        """Whether level-boundary buddy replication is in force (crashes on)."""
        return self.crash_rate > 0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Build a spec from a preset name or a ``key=value,...`` string.

        Examples: ``"mild"``, ``"harsh"``, ``"crash-spare"``,
        ``"drop=0.05,degrade=0.25x4,straggler=0.1x3,down=2,seed=7"``,
        ``"crash=0.2,recovery=shrink,collective=1"``.
        ``degrade`` and ``straggler`` take ``ratexfactor``; the remaining
        keys map onto the dataclass fields (``retries``, ``crash``,
        ``crash_level``, ``spares``, and ``detect`` are shorthands for
        ``max_retries``, ``crash_rate``, ``crash_max_level``,
        ``spare_ranks``, and ``detect_timeout``).
        """
        text = text.strip()
        if text in FAULT_PRESETS:
            return FAULT_PRESETS[text]
        if "=" not in text:
            raise ConfigurationError(
                f"unknown fault preset {text!r}; valid presets: "
                f"{list(FAULT_PRESETS)} (or a key=value,... string)"
            )
        kwargs: dict = {}
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                raise ConfigurationError(
                    f"bad fault token {part!r} in {text!r}: expected key=value; "
                    f"valid presets: {list(FAULT_PRESETS)}"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "degrade":
                    rate, factor = _parse_rate_factor(value)
                    kwargs["degraded_link_rate"] = rate
                    kwargs["degradation_factor"] = factor
                elif key == "straggler":
                    rate, factor = _parse_rate_factor(value)
                    kwargs["straggler_rate"] = rate
                    kwargs["straggler_slowdown"] = factor
                elif key in _KEY_ALIASES:
                    field = _KEY_ALIASES[key]
                    kwargs[field] = _FIELD_PARSERS[field](value)
                elif key in _FIELD_PARSERS:
                    kwargs[key] = _FIELD_PARSERS[key](value)
                else:
                    raise ConfigurationError(
                        f"unknown fault key {key!r} in token {part!r}; valid "
                        f"keys: {sorted(set(_FIELD_PARSERS) | set(_KEY_ALIASES) | {'degrade', 'straggler'})}"
                    )
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad fault value {value!r} for key {key!r} "
                    f"(in token {part!r}): {exc}"
                ) from exc
        return cls(**kwargs)


def _parse_rate_factor(value: str) -> tuple[float, float]:
    """Parse ``"0.25x4"`` (rate, factor); a bare rate keeps the default factor."""
    if "x" in value:
        rate, _, factor = value.partition("x")
        return float(rate), float(factor)
    return float(value), 2.0


def _parse_bool(value: str) -> bool:
    lowered = value.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean (1/0/true/false), got {value!r}")


def _parse_recovery(value: str) -> str:
    if value not in ("spare", "shrink"):
        raise ValueError(f"expected 'spare' or 'shrink', got {value!r}")
    return value


#: field name -> value parser (types of the corresponding FaultSpec fields)
_FIELD_PARSERS: dict[str, object] = {
    "seed": int,
    "drop_rate": float,
    "degraded_link_rate": float,
    "degradation_factor": float,
    "straggler_rate": float,
    "straggler_slowdown": float,
    "down_level": int,
    "down_detour_factor": float,
    "max_retries": int,
    "retry_timeout": float,
    "backoff": float,
    "max_level_retries": int,
    "crash_rate": float,
    "crash_max_level": int,
    "recovery": _parse_recovery,
    "spare_ranks": int,
    "detect_timeout": float,
    "collective_faults": _parse_bool,
}

#: CLI shorthands -> field names
_KEY_ALIASES: dict[str, str] = {
    "drop": "drop_rate",
    "down": "down_level",
    "retries": "max_retries",
    "crash": "crash_rate",
    "crash_level": "crash_max_level",
    "spares": "spare_ranks",
    "detect": "detect_timeout",
    "collective": "collective_faults",
}


#: Named workloads for the CLI and the harness sweeps.
FAULT_PRESETS: dict[str, FaultSpec] = {
    "none": FaultSpec(),
    "mild": FaultSpec(drop_rate=0.01, degraded_link_rate=0.1, degradation_factor=2.0,
                      straggler_rate=0.1, straggler_slowdown=1.5),
    "harsh": FaultSpec(drop_rate=0.05, degraded_link_rate=0.25, degradation_factor=4.0,
                       straggler_rate=0.25, straggler_slowdown=3.0, down_level=2),
    "crash-spare": FaultSpec(crash_rate=0.15, recovery="spare", spare_ranks=2),
    "crash-shrink": FaultSpec(crash_rate=0.15, recovery="shrink"),
    "crash-harsh": FaultSpec(drop_rate=0.02, degraded_link_rate=0.1,
                             degradation_factor=2.0, straggler_rate=0.1,
                             straggler_slowdown=2.0, crash_rate=0.25,
                             recovery="spare", spare_ranks=1,
                             collective_faults=True),
}


__all__ = ["FAULT_PRESETS", "FaultSpec"]
