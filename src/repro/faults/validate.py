"""Correctness oracles for fault-injected BFS runs.

The chaos harness's core claim: *a recoverable fault schedule never
changes the answer*.  :func:`validate_run` checks one faulted
:class:`~repro.bfs.result.BfsResult` — or one batched
:class:`~repro.bfs.msbfs.MsBfsResult`, whose per-source rows are each
held to the same standard — from four independent angles:

1. **Byte-identity** — the level array equals the fault-free baseline
   (or the serial oracle when no baseline is given) bit for bit.
2. **Structure** — the levels admit a parent tree
   (:func:`~repro.bfs.tree.build_parent_tree`) and pass the
   Graph500-style checks of :func:`~repro.bfs.tree.validate_bfs_result`.
3. **Message conservation** — the fault layer's report and the runtime's
   statistics tell the same story: every injected drop shows up in
   ``stats.total_drops``, every retransmission in ``stats.total_retries``,
   and every rollback/replay in ``stats.total_rollbacks``.
4. **Clock monotonicity** — no per-level time bucket is negative, and the
   run's elapsed simulated time is bounded by its bucket maxima.

:func:`validate_run` returns a list of human-readable problem strings —
empty means the run validated.  It never raises on a bad run (the chaos
harness wants to tally failures, not die on the first one).

This module imports the BFS layer, so it is deliberately *not* re-exported
from :mod:`repro.faults` (whose other members are imported by low-level
modules like ``repro.types``): import it as ``repro.faults.validate``.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.msbfs import MsBfsResult
from repro.bfs.result import BfsResult
from repro.bfs.serial import serial_bfs
from repro.bfs.tree import build_parent_tree, validate_bfs_result
from repro.errors import SearchError
from repro.graph.csr import CsrGraph

#: slack for float comparisons between clock buckets
_EPS = 1e-9


def _check_levels(
    graph: CsrGraph,
    source: int,
    levels: np.ndarray,
    expected: np.ndarray | None,
    label: str = "",
) -> list[str]:
    """Byte-identity plus structural checks for one level array."""
    problems: list[str] = []
    if expected is None:
        expected = serial_bfs(graph, source)
    if not np.array_equal(levels, expected):
        diff = int((np.asarray(levels) != np.asarray(expected)).sum())
        problems.append(
            f"levels{label} differ from the fault-free baseline at {diff} vertices"
        )
    try:
        parents = build_parent_tree(graph, levels)
    except SearchError as exc:
        problems.append(f"parent tree construction{label} failed: {exc}")
    else:
        report = validate_bfs_result(graph, source, levels, parents)
        if not report.ok:
            problems.extend(
                f"structural check{label} failed — {m}" for m in report.messages
            )
    return problems


def validate_run(
    graph: CsrGraph,
    source: int,
    result: BfsResult | MsBfsResult,
    baseline_levels: np.ndarray | None = None,
) -> list[str]:
    """Validate one faulted run; returns problem strings (empty = valid).

    Accepts a sequential :class:`BfsResult` or a batched
    :class:`MsBfsResult`.  For a batch, ``source`` is ignored in favour
    of ``result.sources``, ``baseline_levels`` (when given) must be the
    stacked ``(batch, n)`` fault-free rows, and rows searched with a
    target skip the byte-identity/structural checks (an early-terminated
    row is not a full BFS labelling).
    """
    if isinstance(result, MsBfsResult):
        problems = []
        for i, src in enumerate(result.sources):
            if result.targets[i] is not None:
                continue
            expected = baseline_levels[i] if baseline_levels is not None else None
            problems.extend(
                _check_levels(
                    graph, src, result.levels_of(i), expected,
                    label=f" of batched source {src}",
                )
            )
    else:
        problems = _check_levels(graph, source, result.levels, baseline_levels)

    # 3. message conservation between the fault report and the statistics
    faults, stats = result.faults, result.stats
    if faults is not None:
        if stats.total_drops != faults.injected:
            problems.append(
                f"drop conservation violated: stats counted {stats.total_drops} "
                f"drops but the fault report injected {faults.injected}"
            )
        if stats.total_retries != faults.retries:
            problems.append(
                f"retry conservation violated: stats counted {stats.total_retries} "
                f"retransmissions but the fault report says {faults.retries}"
            )
        expected_rollbacks = faults.rollbacks + faults.replayed_levels
        if stats.total_rollbacks != expected_rollbacks:
            problems.append(
                f"rollback conservation violated: stats counted "
                f"{stats.total_rollbacks} level re-executions but the report "
                f"has {faults.rollbacks} rollbacks + {faults.replayed_levels} "
                "crash replays"
            )
        if faults.recovered + faults.unrecovered > faults.injected:
            problems.append(
                f"fault tally inconsistent: {faults.recovered} recovered + "
                f"{faults.unrecovered} unrecovered chunks exceed "
                f"{faults.injected} injected drops"
            )

    # 4. clock monotonicity
    for s in stats.levels:
        for name in ("comm_seconds", "compute_seconds", "fault_seconds"):
            value = getattr(s, name)
            if value < 0.0:
                problems.append(f"level {s.level} has negative {name}: {value}")
    buckets = (result.comm_time, result.compute_time)
    fault_seconds = faults.overhead_seconds if faults is not None else 0.0
    upper = result.comm_time + result.compute_time + fault_seconds + _EPS
    if result.elapsed > upper:
        problems.append(
            f"elapsed {result.elapsed} exceeds comm+compute+fault bound {upper}"
        )
    for name, value in zip(("comm_time", "compute_time"), buckets):
        if result.elapsed + _EPS < value:
            problems.append(f"elapsed {result.elapsed} is below its {name} {value}")
    return problems


__all__ = ["validate_run"]
