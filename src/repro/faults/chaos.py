"""Chaos verification: hundreds of seeded fault schedules, one invariant.

Every *recoverable* fault schedule — whatever mix of transient drops,
degraded links, stragglers, a dying link, and rank crashes it carries —
must leave the BFS answer byte-identical to the fault-free run.  A run
that cannot recover (checkpoint buddies crashing together, a level that
keeps failing past its retry budget) must fail *loudly*, with a
structured :class:`~repro.faults.FaultReport` attached to the raised
:class:`~repro.errors.FaultError` — never return silently wrong levels.

:func:`sample_chaos_spec` draws one seeded spec mixing all fault axes;
:func:`run_chaos` executes a batch of seeds against one pinned search and
classifies every case as ``ok`` (recovered, validated), ``unrecoverable``
(loud structured failure — an acceptable outcome), or ``invalid`` (wrong
answer, broken conservation, or an unstructured crash — a bug).  The
``harness/chaos_sweep.py`` script drives this from the command line and
from CI.

Like :mod:`repro.faults.validate`, this module imports the BFS layer and
is therefore *not* re-exported from :mod:`repro.faults`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.api import build_engine, distributed_bfs
from repro.bfs.msbfs import run_ms_bfs
from repro.bfs.options import BfsOptions
from repro.errors import FaultError, ReproError
from repro.faults.spec import FaultSpec
from repro.faults.validate import validate_run
from repro.graph.csr import CsrGraph
from repro.types import GridShape
from repro.utils.rng import RngFactory


def sample_chaos_spec(seed: int) -> FaultSpec:
    """Draw one seeded fault workload mixing every fault axis.

    The draw is deterministic in ``seed`` (a named RNG stream), and the
    returned spec reuses ``seed`` for its own schedule sampling, so a
    failing case is reproducible from its seed alone.
    """
    rng = RngFactory(seed).named("chaos")
    kwargs: dict[str, object] = {"seed": seed}
    if rng.random() < 0.7:
        kwargs["drop_rate"] = round(float(rng.uniform(0.01, 0.15)), 4)
        kwargs["max_retries"] = int(rng.integers(1, 4))
    if rng.random() < 0.4:
        kwargs["degraded_link_rate"] = round(float(rng.uniform(0.05, 0.3)), 4)
        kwargs["degradation_factor"] = round(float(rng.uniform(1.5, 4.0)), 4)
    if rng.random() < 0.4:
        kwargs["straggler_rate"] = round(float(rng.uniform(0.05, 0.3)), 4)
        kwargs["straggler_slowdown"] = round(float(rng.uniform(1.5, 4.0)), 4)
    if rng.random() < 0.25:
        kwargs["down_level"] = int(rng.integers(0, 4))
    if rng.random() < 0.5:
        kwargs["crash_rate"] = round(float(rng.uniform(0.05, 0.35)), 4)
        kwargs["crash_max_level"] = int(rng.integers(0, 5))
        kwargs["recovery"] = "spare" if rng.random() < 0.5 else "shrink"
        kwargs["spare_ranks"] = int(rng.integers(0, 3))
        kwargs["collective_faults"] = bool(rng.random() < 0.3)
    return FaultSpec(**kwargs)


@dataclass(slots=True)
class ChaosCase:
    """Outcome of one seeded schedule against the pinned search."""

    seed: int
    spec: str
    outcome: str  # "ok" | "unrecoverable" | "invalid"
    problems: list[str] = field(default_factory=list)
    error: str = ""
    injected: int = 0
    crashes: int = 0
    failovers: int = 0
    replayed_levels: int = 0
    rollbacks: int = 0
    checkpoint_bytes: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed, "spec": self.spec, "outcome": self.outcome,
            "problems": list(self.problems), "error": self.error,
            "injected": self.injected, "crashes": self.crashes,
            "failovers": self.failovers,
            "replayed_levels": self.replayed_levels,
            "rollbacks": self.rollbacks,
            "checkpoint_bytes": self.checkpoint_bytes,
        }


@dataclass(slots=True)
class ChaosReport:
    """A chaos batch's verdicts plus the workload that produced them."""

    n: int
    grid: tuple[int, int]
    source: int
    cases: list[ChaosCase] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        tally = {"ok": 0, "unrecoverable": 0, "invalid": 0}
        for case in self.cases:
            tally[case.outcome] = tally.get(case.outcome, 0) + 1
        return tally

    @property
    def ok(self) -> bool:
        """True when no case produced a silently-wrong or unstructured result."""
        return self.counts.get("invalid", 0) == 0

    def invalid_cases(self) -> list[ChaosCase]:
        return [c for c in self.cases if c.outcome == "invalid"]

    def summary(self) -> str:
        c = self.counts
        return (
            f"chaos sweep over {len(self.cases)} schedules on n={self.n} "
            f"grid={self.grid[0]}x{self.grid[1]}: {c['ok']} ok, "
            f"{c['unrecoverable']} unrecoverable (loud), "
            f"{c['invalid']} INVALID"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "n": self.n, "grid": list(self.grid), "source": self.source,
            "counts": self.counts, "ok": self.ok,
            "cases": [case.to_dict() for case in self.cases],
        }

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=1), encoding="utf-8"
        )


def _case_counters(case: ChaosCase, report) -> None:
    if report is None:
        return
    case.injected = report.injected
    case.crashes = report.crashes
    case.failovers = report.failovers
    case.replayed_levels = report.replayed_levels
    case.rollbacks = report.rollbacks
    case.checkpoint_bytes = report.checkpoint_bytes


def run_chaos(
    graph: CsrGraph,
    grid: GridShape | tuple[int, int],
    source: int,
    seeds,
    *,
    opts: BfsOptions | None = None,
    layout: str | None = None,
    batch_sources: list[int] | None = None,
) -> ChaosReport:
    """Run every seed's sampled schedule and classify the outcomes.

    The fault-free baseline runs once; each seeded case must either
    reproduce its levels byte-for-byte (plus pass every check in
    :func:`~repro.faults.validate.validate_run`) or raise a structured
    :class:`FaultError`.  Anything else is ``invalid``.

    With ``batch_sources`` the sweep exercises the *batched* traversal:
    every case runs one MS-BFS over those sources under the sampled
    schedule, and each per-source row must match its own fault-free
    *sequential* baseline byte for byte — the serving path's invariant.
    ``source`` is ignored in batch mode.
    """
    if not isinstance(grid, GridShape):
        grid = GridShape(*grid)
    if batch_sources is not None:
        source = int(batch_sources[0])
        baseline_rows = np.stack([
            distributed_bfs(graph, grid, s, opts=opts, layout=layout).levels
            for s in batch_sources
        ])
    else:
        baseline = distributed_bfs(graph, grid, source, opts=opts, layout=layout)
    report = ChaosReport(n=graph.n, grid=(grid.rows, grid.cols), source=source)
    for seed in seeds:
        spec = sample_chaos_spec(int(seed))
        case = ChaosCase(seed=int(seed), spec=repr(spec), outcome="ok")
        try:
            if batch_sources is not None:
                engine = build_engine(
                    graph, grid, opts=opts, layout=layout, faults=spec
                )
                result = run_ms_bfs(engine, list(batch_sources))
            else:
                result = distributed_bfs(
                    graph, grid, source, opts=opts, layout=layout, faults=spec
                )
        except FaultError as exc:
            # A loud, structured failure is an acceptable chaos outcome —
            # but only when the error carries the fault report.
            case.error = str(exc)
            if exc.report is None:
                case.outcome = "invalid"
                case.problems = ["FaultError raised without a structured report"]
            else:
                case.outcome = "unrecoverable"
                _case_counters(case, exc.report)
        except ReproError as exc:  # pragma: no cover - defensive
            case.outcome = "invalid"
            case.error = f"{type(exc).__name__}: {exc}"
            case.problems = ["run died with an unstructured error"]
        else:
            expected = (
                baseline_rows if batch_sources is not None else baseline.levels
            )
            case.problems = validate_run(graph, source, result, expected)
            if case.problems:
                case.outcome = "invalid"
            _case_counters(case, result.faults)
        report.cases.append(case)
    return report


__all__ = ["ChaosCase", "ChaosReport", "run_chaos", "sample_chaos_spec"]
