"""SPMD multiprocessing backend for the 2D-partitioned BFS.

Runs Algorithm 2 with *real* parallelism: one OS process per rank, a
level-synchronous exchange protocol through a central hub in the parent
process, NumPy int64 buffers as the only payload (the mpi4py "fast path"
idiom).  The message pattern is identical to the simulated engine's direct
collectives — expand along processor-columns, fold along processor-rows —
so this backend doubles as an executable specification of what a real MPI
port performs each level.

Protocol (every rank sends the same message kinds in the same order, so
the hub never deadlocks):

    repeat:
        ("xchg", {dst: buffer})  x expand rounds   # 1 direct / R-1 ring
        ("xchg", {dst: buffer})  x fold rounds     # 1 direct / C-1 union-ring
        ("sum", (count, failed))  # termination allreduce + fault flag
    until the global sum is 0, then:
        ("done", (owned_levels, drop_counters))

Supported collectives: ``expand_collective`` in {"direct", "ring"} and
``fold_collective`` in {"direct", "union-ring"} — the direct patterns and
the paper's ring patterns, whose per-level round counts are identical on
every rank (R-1 / C-1), keeping the lockstep protocol trivially
deadlock-free.

Fault injection (``faults=``) mirrors the simulator's transient-drop
semantics chunk for chunk.  Each worker owns a
:class:`~repro.faults.crash.KeyedDropStream` seeded like the simulator's
schedule; because draws are keyed by ``(src, dst, transmission-index)``,
the per-link decision sequences agree across backends regardless of
execution order.  Loss semantics follow the simulated collectives
exactly: *direct* expand/fold chunks are inbox-driven there, so an
unrecovered drop withholds the payload; *ring* and *union-ring* chunks
only account the drop (the simulated schedules compute their data flow
locally), so the payload is delivered anyway.  Either way the level is
flagged, every worker rolls back to its level-entry snapshot, and the
level replays with fresh draws — the hub counts the rollback and raises
:class:`~repro.errors.FaultError` after ``max_level_retries`` failures
of one level.  The level-entry snapshot covers every piece of mutable
traversal state, including the sent-cache and the communication-sieve
shadow, so the sieve composes with fault schedules exactly as in the
simulated engines (the sieved tally accumulates across replayed
attempts, mirroring ``CommStats.abort_level``).  Rank crashes
(``crash_rate > 0``) are rejected: crash recovery needs the simulator's
global clock and spare-rank model.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.bfs.bottom_up import _first_hit_scan
from repro.bfs.direction import BOTTOM_UP, TOP_DOWN, DirectionPolicy
from repro.bfs.options import BfsOptions
from repro.bfs.sent_cache import SentCache
from repro.errors import CommunicationError, FaultError, SearchError
from repro.faults import FaultReport, FaultSchedule, FaultSpec
from repro.faults.crash import KeyedDropStream
from repro.graph.csr import CsrGraph
from repro.partition.two_d import TwoDPartition
from repro.types import LEVEL_DTYPE, UNREACHED, VERTEX_DTYPE, GridShape
from repro.wire import WireCodec, resolve_wire

_POLL_INTERVAL = 0.05


def spmd_bfs(
    graph: CsrGraph,
    grid: GridShape | tuple[int, int],
    source: int,
    *,
    opts: BfsOptions | None = None,
    wire: WireCodec | str | None = None,
    faults: FaultSpec | str | None = None,
    return_report: bool = False,
    return_sieved: bool = False,
    timeout: float = 120.0,
) -> np.ndarray | tuple:
    """Run a 2D-partitioned BFS with one OS process per rank.

    Returns the global level array (identical to the simulated engine and
    the serial oracle).  ``wire`` selects a :mod:`repro.wire` codec; every
    inter-rank payload is *really* encoded by the sender and decoded by
    the receiver, so the codecs are exercised under true parallelism.
    ``faults`` injects seeded transient drops that agree chunk for chunk
    with the simulator (see the module docstring); ``return_report=True``
    returns ``(levels, FaultReport-or-None)`` instead of bare levels.
    With ``opts.use_sieve`` the workers run the communication sieve in
    lockstep with the simulated engines (same shadows, same dropped
    candidates); ``return_sieved=True`` appends the machine-wide count of
    sieved fold candidates to the return tuple so tests can assert exact
    cross-backend parity.  ``timeout`` bounds the whole run; a hung or
    dead worker raises :class:`CommunicationError` instead of
    deadlocking.
    """
    if not isinstance(grid, GridShape):
        grid = GridShape(*grid)
    if not (0 <= source < graph.n):
        raise SearchError(f"source {source} out of range [0, {graph.n})")
    opts = opts or BfsOptions()
    if isinstance(faults, str):
        faults = FaultSpec.parse(faults)
    if faults is not None and faults.crash_rate > 0:
        raise CommunicationError(
            "spmd backend does not support rank crashes (crash recovery "
            "needs the simulator's global clock and spare-rank model); "
            "use the simulated engine for crash_rate > 0"
        )
    if opts.expand_collective not in ("direct", "ring"):
        raise CommunicationError(
            f"spmd backend supports expand in {{'direct', 'ring'}}, "
            f"got {opts.expand_collective!r}"
        )
    if opts.fold_collective not in ("direct", "union-ring"):
        raise CommunicationError(
            f"spmd backend supports fold in {{'direct', 'union-ring'}}, "
            f"got {opts.fold_collective!r}"
        )
    policy = DirectionPolicy.coerce(opts.direction)
    if policy.may_go_bottom_up and faults is not None:
        raise CommunicationError(
            "direction-optimizing BFS does not support fault injection "
            "(mirroring the simulated engines); use direction='top-down' "
            "with faults"
        )
    if opts.use_sieve and opts.fold_collective != "union-ring":
        raise CommunicationError(
            "the communication sieve requires the union-ring fold "
            f"(mirroring the simulated engines), not {opts.fold_collective!r}"
        )
    codec = resolve_wire(wire)
    partition = TwoDPartition(graph, grid)
    nranks = grid.size

    if nranks == 1:
        levels = _single_rank_bfs(partition, source)
        out: tuple = (levels,)
        if return_report:
            report = (
                FaultSchedule(faults, 1).snapshot_report(0.0)
                if faults is not None
                else None
            )
            out = out + (report,)
        if return_sieved:
            # a single rank has no fold peers, so nothing is ever sieved
            out = out + (0,)
        return out if len(out) > 1 else levels

    ctx = mp.get_context("fork")
    pipes = [ctx.Pipe(duplex=True) for _ in range(nranks)]
    workers = [
        ctx.Process(
            target=_worker_main,
            args=(rank, partition, source, opts, codec, faults, pipes[rank][1]),
            daemon=True,
        )
        for rank in range(nranks)
    ]
    for w in workers:
        w.start()
    hub_ends = [p[0] for p in pipes]
    try:
        levels, report, sieved = _run_hub(
            hub_ends, workers, partition, timeout, faults
        )
        out: tuple = (levels,)
        if return_report:
            out = out + (report,)
        if return_sieved:
            out = out + (sieved,)
        return out if len(out) > 1 else levels
    finally:
        for w in workers:
            if w.is_alive():
                w.terminate()
            w.join(timeout=5)
        for end, (_, worker_end) in zip(hub_ends, pipes):
            end.close()
            worker_end.close()


# ---------------------------------------------------------------------- #
# hub (parent process)
# ---------------------------------------------------------------------- #
def _run_hub(
    conns,
    workers,
    partition: TwoDPartition,
    timeout: float,
    spec: FaultSpec | None = None,
) -> tuple[np.ndarray, FaultReport | None, int]:
    import time

    deadline = time.monotonic() + timeout
    nranks = len(conns)
    done_levels: dict[int, np.ndarray] = {}
    done_counters: dict[int, tuple[int, int, int, int] | None] = {}
    total_sieved = 0
    # the hub plays the engine's role in the fault lifecycle: it counts
    # level rollbacks and enforces the per-level replay budget
    rollbacks = 0
    level = 0
    level_attempts = 0
    max_level_retries = spec.max_level_retries if spec is not None else 0
    while len(done_levels) < nranks:
        batch = [_recv(conns[r], workers[r], deadline, r) for r in range(nranks)]
        kinds = {kind for kind, _ in batch}
        if kinds == {"xchg"}:
            inboxes: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(nranks)]
            for src, (_kind, sends) in enumerate(batch):
                for dst, payload in sends.items():
                    if not (0 <= dst < nranks):
                        raise CommunicationError(f"worker {src} addressed rank {dst}")
                    inboxes[dst].append((src, payload))
            for rank in range(nranks):
                conns[rank].send(inboxes[rank])
        elif kinds == {"sum"}:
            total = sum(count for _kind, (count, _failed) in batch)
            failed = any(flag for _kind, (_count, flag) in batch)
            if failed:
                rollbacks += 1
                level_attempts += 1
                if spec is not None and level_attempts > max_level_retries:
                    report = None
                    if spec is not None:
                        schedule = FaultSchedule(spec, nranks)
                        schedule.report.rollbacks = rollbacks
                        report = schedule.snapshot_report(0.0)
                    raise FaultError(
                        f"level {level} still failing after {max_level_retries} "
                        "replays; raise max_retries or max_level_retries",
                        report=report,
                    )
            else:
                level += 1
                level_attempts = 0
            for rank in range(nranks):
                conns[rank].send((total, int(failed)))
        elif kinds == {"done"}:
            for rank, (_kind, (levels, counters, sieved)) in enumerate(batch):
                done_levels[rank] = levels
                done_counters[rank] = counters
                total_sieved += int(sieved)
        else:
            raise CommunicationError(f"workers desynchronised: saw kinds {sorted(kinds)}")

    global_levels = np.full(partition.n, UNREACHED, dtype=LEVEL_DTYPE)
    for rank in range(nranks):
        loc = partition.local(rank)
        global_levels[loc.vertex_lo : loc.vertex_hi] = done_levels[rank]

    report: FaultReport | None = None
    if spec is not None:
        # reconstruct the construction-sampled fields (degraded links,
        # stragglers, the down link) exactly as the simulator does, then
        # fold in the drop counters the workers tallied on the wire
        schedule = FaultSchedule(spec, nranks)
        merged = schedule.report
        for counters in done_counters.values():
            if counters is None:
                continue
            injected, retries, recovered, unrecovered = counters
            merged.injected += injected
            merged.retries += retries
            merged.recovered += recovered
            merged.unrecovered += unrecovered
        merged.rollbacks = rollbacks
        report = schedule.snapshot_report(0.0)
    return global_levels, report, total_sieved


def _recv(conn, worker, deadline: float, rank: int):
    import time

    while not conn.poll(_POLL_INTERVAL):
        if not worker.is_alive():
            raise CommunicationError(f"worker {rank} died (exitcode {worker.exitcode})")
        if time.monotonic() > deadline:
            raise CommunicationError(f"worker {rank} timed out")
    return conn.recv()


# ---------------------------------------------------------------------- #
# worker (one process per rank)
# ---------------------------------------------------------------------- #
class _WorkerFaults:
    """Worker-side mirror of the schedule's transient-drop accounting.

    Holds the same :class:`KeyedDropStream` the simulator's
    :class:`FaultSchedule` would, plus the report counters this worker
    contributes.  ``failed`` latches when a chunk exhausts its retries;
    the flag rides the next ``("sum", ...)`` message so every worker
    learns about the loss at the level's termination allreduce.
    """

    __slots__ = ("stream", "injected", "retries", "recovered", "unrecovered", "failed")

    def __init__(self, spec: FaultSpec) -> None:
        self.stream = KeyedDropStream(spec.seed, spec.drop_rate, spec.max_retries)
        self.injected = 0
        self.retries = 0
        self.recovered = 0
        self.unrecovered = 0
        self.failed = False

    def plan_send(self, src: int, dst: int) -> bool:
        """Decide one chunk's fate; tallies mirror FaultSchedule.transmission_plan."""
        transmissions, delivered = self.stream.plan(src, dst)
        drops = transmissions - 1 if delivered else transmissions
        if drops:
            self.injected += drops
            self.retries += transmissions - 1
            if delivered:
                self.recovered += 1
            else:
                self.unrecovered += 1
                self.failed = True
        return delivered

    def counters(self) -> tuple[int, int, int, int]:
        return (self.injected, self.retries, self.recovered, self.unrecovered)


def _worker_main(
    rank: int,
    partition: TwoDPartition,
    source: int,
    opts: BfsOptions,
    codec: WireCodec,
    spec: FaultSpec | None,
    conn,
) -> None:
    grid = partition.grid
    loc = partition.local(rank)
    levels = np.full(loc.num_owned, UNREACHED, dtype=LEVEL_DTYPE)
    frontier = np.empty(0, dtype=VERTEX_DTYPE)
    if loc.vertex_lo <= source < loc.vertex_hi:
        levels[source - loc.vertex_lo] = 0
        frontier = np.array([source], dtype=VERTEX_DTYPE)

    col_group = grid.col_members(loc.mesh_col)
    row_group = grid.row_members(loc.mesh_row)
    sent_cache = SentCache(loc.row_map) if opts.use_sent_cache else None
    # Communication sieve: this worker's shadow of its row peers' visited
    # sets, fed by their end-of-level summary broadcasts.  Own vertices
    # are never received, so self-addressed fold contributions always
    # pass — exactly the simulated PooledSieve semantics.
    shadow = np.zeros(partition.n, dtype=bool) if opts.use_sieve else None
    sieved = 0
    R = grid.rows
    offsets = partition.dist.offsets
    col_bounds = offsets[::R]
    faults = _WorkerFaults(spec) if spec is not None and spec.drop_rate > 0 else None
    # Direction policy inputs are the globally-allreduced totals every
    # worker already receives, so all ranks take the identical branch in
    # lockstep with no extra message (and with the simulated engines).
    policy = DirectionPolicy.coerce(opts.direction)
    direction_prev = TOP_DOWN
    global_frontier = 1  # the source
    global_unvisited = partition.n - 1

    level = 0
    while True:
        if faults is not None:
            # level-entry snapshot: frontier arrays are never mutated in
            # place, so only the level labels, the sent-cache, and the
            # sieve shadow need copies (the sieved tally is deliberately
            # left out — like CommStats.abort_level it accumulates across
            # replayed attempts)
            snapshot = (
                levels.copy(),
                frontier,
                sent_cache.snapshot() if sent_cache is not None else None,
                shadow.copy() if shadow is not None else None,
            )

        direction = policy.decide(
            level, global_frontier, global_unvisited, partition.n, direction_prev
        )
        if direction == BOTTOM_UP:
            fresh = _bottom_up_level(
                conn, rank, partition, loc, row_group, col_group,
                levels, frontier, level, codec, faults,
            )
        else:
            # --- expand: share the frontier within the processor-column --- #
            fbar = _expand_phase(
                conn, rank, col_group, frontier, opts.expand_collective, codec, faults
            )

            # --- local discovery on partial edge lists --- #
            neighbors = np.unique(loc.partial_neighbors(fbar))
            if sent_cache is not None:
                neighbors = sent_cache.filter_unsent(neighbors)
            if shadow is not None:
                # the sieve: candidates whose owner is already known to
                # have visited them never enter a fold contribution
                keep = ~shadow[neighbors]
                sieved += int(neighbors.size - keep.sum())
                neighbors = neighbors[keep]

            # --- fold: route neighbours to their owners along the row --- #
            bounds = np.searchsorted(neighbors, col_bounds)
            contrib = {
                m: neighbors[bounds[m] : bounds[m + 1]]
                for m in range(grid.cols)
                if bounds[m + 1] > bounds[m]
            }
            candidates = _fold_phase(
                conn, rank, row_group, contrib, opts.fold_collective, codec, faults
            )

            # --- label fresh vertices --- #
            if candidates.size:
                local = candidates - loc.vertex_lo
                fresh = candidates[levels[local] == UNREACHED]
            else:
                fresh = candidates
            if fresh.size:
                levels[fresh - loc.vertex_lo] = level + 1

            if shadow is not None:
                # --- sieve summaries: broadcast the freshly labelled
                # vertices to the row peers, mark what they broadcast.
                # One lockstep xchg round per top-down level (bottom-up
                # levels skip it, mirroring the simulated engines); the
                # round runs even with nothing fresh so the protocol
                # stays deadlock-free on the final level. --- #
                sends = (
                    {peer: fresh for peer in row_group if peer != rank}
                    if fresh.size
                    else {}
                )
                inbox = _exchange(conn, rank, sends, codec, None, lossy=True)
                for _src, payload in inbox:
                    shadow[payload] = True

        failed = int(faults.failed) if faults is not None else 0
        conn.send(("sum", (int(fresh.size), failed)))
        total, level_failed = conn.recv()
        if level_failed:
            # some rank lost a chunk for good: every worker rolls the
            # level back and replays it (fresh keyed draws — the stream
            # counters advanced, so the retry sees new coin flips)
            levels[:] = snapshot[0]
            frontier = snapshot[1]
            if sent_cache is not None:
                sent_cache.restore(snapshot[2])
            if shadow is not None:
                shadow[:] = snapshot[3]
            faults.failed = False
            continue
        frontier = fresh
        direction_prev = direction
        global_frontier = total
        global_unvisited -= total
        level += 1
        if total == 0:
            break

    conn.send(
        ("done", (levels, faults.counters() if faults is not None else None, sieved))
    )


def _bottom_up_level(
    conn,
    rank: int,
    partition: TwoDPartition,
    loc,
    row_group: list[int],
    col_group: list[int],
    levels: np.ndarray,
    frontier: np.ndarray,
    level: int,
    codec: WireCodec,
    faults: _WorkerFaults | None,
) -> np.ndarray:
    """One bottom-up level: exactly three lockstep ``xchg`` rounds.

    (1) frontier owned-lists travel along the processor **row** (the
    stored rows of this rank are vertices owned by its row peers);
    (2) unvisited owned-lists travel along the processor **column** (the
    stored columns are the column chunk those peers own); (3) each
    stored column still unvisited scans its partial row list for a
    frontier parent, and the finds travel to their owners within the
    column for de-duplication and labelling.  Mirrors
    :func:`repro.bfs.bottom_up.bottom_up_level_2d` message for message.
    """
    empty = np.empty(0, dtype=VERTEX_DTYPE)
    n = partition.n

    def merge(own: np.ndarray, inbox) -> np.ndarray:
        pieces = [own, *(payload for _src, payload in inbox)]
        return np.unique(np.concatenate(pieces)) if len(pieces) > 1 else own

    # round 1: frontier membership of the stored rows
    sends = {peer: frontier for peer in row_group if peer != rank and frontier.size}
    inbox = _exchange(conn, rank, sends, codec, faults, lossy=True)
    frontier_rows = merge(frontier, inbox)

    # round 2: unvisited state of the column chunk
    owned_unvisited = (
        np.flatnonzero(levels == UNREACHED).astype(VERTEX_DTYPE) + loc.vertex_lo
    )
    sends = {
        peer: owned_unvisited
        for peer in col_group
        if peer != rank and owned_unvisited.size
    }
    inbox = _exchange(conn, rank, sends, codec, faults, lossy=True)
    unvisited_chunk = merge(owned_unvisited, inbox)

    # scan: stored columns still unvisited probe their partial row lists
    frontier_mask = np.zeros(n, dtype=bool)
    frontier_mask[frontier_rows] = True
    unvisited_mask = np.zeros(n, dtype=bool)
    unvisited_mask[unvisited_chunk] = True
    col_ids = loc.col_map.ids
    scan_cols = np.flatnonzero(unvisited_mask[col_ids])
    starts = loc.col_indptr[scan_cols].astype(np.int64)
    lengths = loc.col_indptr[scan_cols + 1].astype(np.int64) - starts
    found, _ = _first_hit_scan(starts, lengths, loc.rows, frontier_mask)
    found_v = col_ids[scan_cols[found]]

    # round 3: finds travel to their owners (within the processor column)
    owners = partition.owner_of(found_v) if found_v.size else found_v
    sends = {
        int(o): found_v[owners == o]
        for o in np.unique(owners)
        if int(o) != rank
    }
    own = found_v[owners == rank] if found_v.size else empty
    inbox = _exchange(conn, rank, sends, codec, faults, lossy=True)
    merged = merge(own, inbox)
    if merged.size:
        local = merged - loc.vertex_lo
        fresh = merged[levels[local] == UNREACHED]
        levels[fresh - loc.vertex_lo] = level + 1
    else:
        fresh = merged
    return fresh


def _exchange(
    conn,
    rank: int,
    sends: dict[int, np.ndarray],
    codec: WireCodec,
    faults: _WorkerFaults | None = None,
    lossy: bool = True,
) -> list[tuple[int, np.ndarray]]:
    """Round-trip one exchange through the hub with *real* encoded buffers.

    The sender serialises every payload through ``codec.encode`` and the
    receiver reconstructs it with ``codec.decode`` — bytes are the only
    thing that crosses the process boundary, so a codec bug cannot hide
    behind the simulator's byte accounting.

    With ``faults`` attached every payload draws its transmission plan
    from the keyed stream.  ``lossy=True`` (the direct collectives, whose
    simulated counterparts are inbox-driven) withholds unrecovered chunks
    from the hub; ``lossy=False`` (ring / union-ring, where the simulated
    schedules compute data flow locally) delivers them anyway — the drop
    is accounting-only, exactly as in the simulator.
    """
    encoded: dict[int, bytes] = {}
    for dst, arr in sends.items():
        delivered = True
        if faults is not None:
            delivered = faults.plan_send(rank, dst)
        if delivered or not lossy:
            encoded[dst] = codec.encode(arr)
    conn.send(("xchg", encoded))
    return [(src, codec.decode(buf)) for src, buf in conn.recv()]


def _expand_phase(
    conn,
    rank: int,
    col_group: list[int],
    frontier: np.ndarray,
    mode: str,
    codec: WireCodec,
    faults: _WorkerFaults | None = None,
) -> np.ndarray:
    """Column-group expand: direct personalized sends or an all-gather ring."""
    size = len(col_group)
    if size == 1:
        return frontier
    if mode == "direct":
        sends = {peer: frontier for peer in col_group if peer != rank and frontier.size}
        inbox = _exchange(conn, rank, sends, codec, faults, lossy=True)
        pieces = [frontier, *(payload for _src, payload in inbox)]
        return np.unique(np.concatenate(pieces)) if len(pieces) > 1 else frontier
    # ring all-gather: R-1 rounds, forward what arrived last round
    idx = col_group.index(rank)
    successor = col_group[(idx + 1) % size]
    in_hand = frontier
    gathered = [frontier]
    for _round in range(size - 1):
        sends = {successor: in_hand} if in_hand.size else {}
        inbox = _exchange(conn, rank, sends, codec, faults, lossy=False)
        in_hand = inbox[0][1] if inbox else np.empty(0, dtype=VERTEX_DTYPE)
        gathered.append(in_hand)
    return np.unique(np.concatenate(gathered))


def _fold_phase(
    conn,
    rank: int,
    row_group: list[int],
    contrib: dict[int, np.ndarray],
    mode: str,
    codec: WireCodec,
    faults: _WorkerFaults | None = None,
) -> np.ndarray:
    """Row-group fold: direct personalized sends or the union reduce-scatter ring.

    ``contrib`` maps member index (mesh column) to the neighbours addressed
    to that member's owner.  Returns the merged candidates owned by this rank.
    """
    size = len(row_group)
    idx = row_group.index(rank)
    empty = np.empty(0, dtype=VERTEX_DTYPE)
    if size == 1:
        own = contrib.get(0, empty)
        return np.unique(own) if own.size else own
    if mode == "direct":
        sends = {
            row_group[m]: chunk
            for m, chunk in contrib.items()
            if m != idx and chunk.size
        }
        inbox = _exchange(conn, rank, sends, codec, faults, lossy=True)
        pieces = [contrib.get(idx, empty), *(payload for _src, payload in inbox)]
        merged = np.concatenate(pieces)
        return np.unique(merged) if merged.size else merged
    # union reduce-scatter ring (the paper's union-fold): the chunk for
    # destination d starts at member (d+1) % size and accumulates each
    # visited member's contribution via set-union.
    successor = row_group[(idx + 1) % size]
    dest = (idx - 1) % size
    chunk = contrib.get(dest, empty)
    if chunk.size:
        chunk = np.unique(chunk)
    result = empty
    for round_idx in range(size - 1):
        sends = {successor: chunk} if chunk.size else {}
        inbox = _exchange(conn, rank, sends, codec, faults, lossy=False)
        received = inbox[0][1] if inbox else empty
        dest = (idx - 2 - round_idx) % size
        own = contrib.get(dest, empty)
        merged = np.unique(np.concatenate([received, own])) if (
            received.size or own.size
        ) else empty
        if dest == idx:
            result = merged
            chunk = empty
        else:
            chunk = merged
    return result


def _single_rank_bfs(partition: TwoDPartition, source: int) -> np.ndarray:
    """Degenerate P=1 case: run the worker loop inline without processes."""
    loc = partition.local(0)
    levels = np.full(loc.num_owned, UNREACHED, dtype=LEVEL_DTYPE)
    levels[source - loc.vertex_lo] = 0
    frontier = np.array([source], dtype=VERTEX_DTYPE)
    level = 0
    while frontier.size:
        neighbors = np.unique(loc.partial_neighbors(frontier))
        fresh = neighbors[levels[neighbors - loc.vertex_lo] == UNREACHED]
        levels[fresh - loc.vertex_lo] = level + 1
        frontier = fresh
        level += 1
    return levels
