"""Execution backends.

The default backend throughout the library is the *simulated* virtual-rank
runtime (:mod:`repro.runtime`), which models BlueGene/L timing exactly and
deterministically.  This package adds a **real-parallel SPMD backend**:
each rank of the 2D algorithm runs as its own OS process, exchanging NumPy
vertex buffers through pipes via a level-synchronous message hub — the
same program structure an mpi4py port would have, runnable on any
multicore machine.
"""

from repro.backends.spmd import spmd_bfs

__all__ = ["spmd_bfs"]
