"""Graph partitioning: 1D vertex partitioning and the paper's 2D edge partitioning."""

from repro.partition.base import BlockDistribution, Partition
from repro.partition.indexing import VertexIndexMap
from repro.partition.one_d import OneDPartition, RankLocal1D
from repro.partition.two_d import TwoDPartition, RankLocal2D
from repro.partition.balance import balance_report, BalanceReport
from repro.partition.degree_aware import degree_aware_relabeling
from repro.partition.permutation import VertexRelabeling, relabel_graph

__all__ = [
    "degree_aware_relabeling",
    "VertexRelabeling",
    "relabel_graph",
    "BlockDistribution",
    "Partition",
    "VertexIndexMap",
    "OneDPartition",
    "RankLocal1D",
    "TwoDPartition",
    "RankLocal2D",
    "balance_report",
    "BalanceReport",
]
