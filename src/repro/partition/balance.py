"""Partition balance metrics.

The paper requires both layouts to assign "approximately the same number of
vertices and edges" to every processor; these helpers quantify that and are
asserted statistically in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.base import Partition


@dataclass(frozen=True, slots=True)
class BalanceReport:
    """Min/max/mean per-rank counts plus the max/mean imbalance factor."""

    metric: str
    minimum: int
    maximum: int
    mean: float
    imbalance: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.metric}: min={self.minimum} max={self.maximum} "
            f"mean={self.mean:.1f} imbalance={self.imbalance:.3f}"
        )


def balance_report(partition: Partition, metric: str = "edge_entries") -> BalanceReport:
    """Compute the balance of ``metric`` (a :meth:`memory_footprint` key)."""
    counts = np.array(
        [partition.memory_footprint(r)[metric] for r in range(partition.nranks)],
        dtype=np.float64,
    )
    mean = float(counts.mean()) if counts.size else 0.0
    imbalance = float(counts.max() / mean) if mean > 0 else 1.0
    return BalanceReport(
        metric=metric,
        minimum=int(counts.min()) if counts.size else 0,
        maximum=int(counts.max()) if counts.size else 0,
        mean=mean,
        imbalance=imbalance,
    )
