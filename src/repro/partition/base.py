"""Partitioning primitives shared by the 1D and 2D layouts.

Both layouts distribute vertices in contiguous *blocks* ("symmetrically
reordered so that vertices owned by the same processor are contiguous",
Section 2.1).  :class:`BlockDistribution` is that balanced block map;
:class:`Partition` is the interface the BFS drivers program against.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import PartitionError
from repro.types import VERTEX_DTYPE, GridShape, as_vertex_array


class BlockDistribution:
    """Balanced contiguous block distribution of ``n`` items over ``parts`` parts.

    Part ``p`` holds ``n // parts`` items, plus one extra for the first
    ``n % parts`` parts, so sizes differ by at most one — the paper's
    "approximately the same number of vertices" balance requirement.
    """

    __slots__ = ("n", "parts", "offsets")

    def __init__(self, n: int, parts: int) -> None:
        if parts < 1:
            raise PartitionError(f"need at least one part, got {parts}")
        if n < 0:
            raise PartitionError(f"item count must be non-negative, got {n}")
        self.n = int(n)
        self.parts = int(parts)
        base, rem = divmod(n, parts)
        sizes = np.full(parts, base, dtype=VERTEX_DTYPE)
        sizes[:rem] += 1
        self.offsets = np.concatenate(([0], np.cumsum(sizes))).astype(VERTEX_DTYPE)

    def size_of(self, part: int) -> int:
        """Number of items in ``part``."""
        self._check_part(part)
        return int(self.offsets[part + 1] - self.offsets[part])

    def range_of(self, part: int) -> tuple[int, int]:
        """Half-open item range ``[lo, hi)`` of ``part``."""
        self._check_part(part)
        return int(self.offsets[part]), int(self.offsets[part + 1])

    def items_of(self, part: int) -> np.ndarray:
        """Item ids in ``part`` as an array."""
        lo, hi = self.range_of(part)
        return np.arange(lo, hi, dtype=VERTEX_DTYPE)

    def part_of(self, items) -> np.ndarray:
        """Vectorised owner lookup: part id for each item in ``items``."""
        items = as_vertex_array(items)
        if items.size and (items.min() < 0 or items.max() >= self.n):
            raise PartitionError("item ids out of range for this distribution")
        return np.searchsorted(self.offsets, items, side="right") - 1

    def part_of_scalar(self, item: int) -> int:
        """Owner part of a single ``item``."""
        return int(self.part_of(np.array([item]))[0])

    def local_index(self, items) -> np.ndarray:
        """Offset of each item within its owning part."""
        items = as_vertex_array(items)
        parts = self.part_of(items)
        return items - self.offsets[parts]

    def _check_part(self, part: int) -> None:
        if not (0 <= part < self.parts):
            raise PartitionError(f"part {part} out of range [0, {self.parts})")


class Partition(abc.ABC):
    """Interface of a distributed graph layout over ``nranks`` virtual ranks."""

    #: global vertex count
    n: int
    #: logical processor mesh (1 x P or P x 1 for the 1D layout)
    grid: GridShape

    @property
    def nranks(self) -> int:
        """Total number of ranks ``P``."""
        return self.grid.size

    @abc.abstractmethod
    def owner_of(self, vertices) -> np.ndarray:
        """Rank owning each vertex (vectorised)."""

    @abc.abstractmethod
    def owned_vertices(self, rank: int) -> np.ndarray:
        """Global ids of the vertices owned by ``rank``."""

    @abc.abstractmethod
    def memory_footprint(self, rank: int) -> dict[str, int]:
        """Per-structure element counts on ``rank`` (for O(n/P) scalability checks)."""

    def owned_count(self, rank: int) -> int:
        """Number of vertices owned by ``rank``."""
        return int(self.owned_vertices(rank).shape[0])
