"""1D (vertex) partitioning — the conventional baseline (Section 2.1).

Each of the ``P`` ranks owns a contiguous block of vertices together with
*all* edges emanating from them (full edge lists, one block row ``A_i`` of
the adjacency matrix per rank).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CsrGraph
from repro.partition.base import BlockDistribution, Partition
from repro.types import VERTEX_DTYPE, GridShape, as_vertex_array


@dataclass(frozen=True, slots=True)
class RankLocal1D:
    """Per-rank storage for the 1D layout.

    ``indptr``/``adjacency`` form a local CSR over the rank's owned
    vertices (row ``i`` is owned vertex ``vertex_lo + i``); neighbour ids
    in ``adjacency`` are *global*.
    """

    rank: int
    vertex_lo: int
    vertex_hi: int
    indptr: np.ndarray
    adjacency: np.ndarray

    @property
    def num_owned(self) -> int:
        """Number of vertices owned by this rank."""
        return self.vertex_hi - self.vertex_lo

    @property
    def num_local_edges(self) -> int:
        """Number of adjacency entries stored on this rank."""
        return int(self.adjacency.shape[0])

    def neighbors_of_frontier(self, frontier_global: np.ndarray) -> np.ndarray:
        """All neighbours (global ids, with duplicates) of owned frontier vertices.

        ``frontier_global`` must contain only vertices owned by this rank.
        This is step 7 of Algorithm 1: merge the edge lists of the frontier.
        """
        frontier_global = as_vertex_array(frontier_global)
        if frontier_global.size == 0:
            return np.empty(0, dtype=VERTEX_DTYPE)
        local = frontier_global - self.vertex_lo
        if local.min() < 0 or local.max() >= self.num_owned:
            raise PartitionError(f"rank {self.rank} asked to expand non-owned vertices")
        starts = self.indptr[local]
        stops = self.indptr[local + 1]
        lengths = stops - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=VERTEX_DTYPE)
        out_offsets = np.concatenate(([0], np.cumsum(lengths)))
        gather = np.arange(total, dtype=VERTEX_DTYPE)
        gather += np.repeat(starts - out_offsets[:-1], lengths)
        return self.adjacency[gather]


class OneDPartition(Partition):
    """A P-way 1D vertex partitioning of an undirected graph."""

    def __init__(self, graph: CsrGraph, nranks: int, *, as_row: bool = True) -> None:
        """Partition ``graph`` over ``nranks`` ranks.

        ``as_row`` selects the degenerate mesh orientation used for
        bookkeeping: ``True`` gives a ``P x 1`` mesh (the paper's
        ``32768 x 1`` row in Table 1), ``False`` gives ``1 x P``
        (``1 x 32768``).  The data layout is identical; only which
        communicator (column vs row) carries the fold differs, which is
        what Table 1's expand/fold message-length split shows.
        """
        if nranks < 1:
            raise PartitionError(f"need at least one rank, got {nranks}")
        self.n = graph.n
        self.grid = GridShape(nranks, 1) if as_row else GridShape(1, nranks)
        self.dist = BlockDistribution(graph.n, nranks)
        self._locals: list[RankLocal1D] = []
        for rank in range(nranks):
            lo, hi = self.dist.range_of(rank)
            indptr = (graph.indptr[lo : hi + 1] - graph.indptr[lo]).astype(VERTEX_DTYPE)
            adjacency = graph.indices[graph.indptr[lo] : graph.indptr[hi]].copy()
            self._locals.append(RankLocal1D(rank, lo, hi, indptr, adjacency))

    # ------------------------------------------------------------------ #
    # Partition interface
    # ------------------------------------------------------------------ #
    def owner_of(self, vertices) -> np.ndarray:
        return self.dist.part_of(vertices)

    def owned_vertices(self, rank: int) -> np.ndarray:
        return self.dist.items_of(rank)

    def local(self, rank: int) -> RankLocal1D:
        """Per-rank storage object."""
        if not (0 <= rank < self.nranks):
            raise PartitionError(f"rank {rank} out of range [0, {self.nranks})")
        return self._locals[rank]

    def memory_footprint(self, rank: int) -> dict[str, int]:
        loc = self.local(rank)
        return {
            "owned_vertices": loc.num_owned,
            "edge_entries": loc.num_local_edges,
            "indptr": int(loc.indptr.shape[0]),
        }
