"""2D (edge) partitioning — the paper's contribution (Section 2.2).

The ``P = R * C`` ranks form an ``R x C`` logical mesh.  The adjacency
matrix is divided into ``R * C`` block rows and ``C`` block columns; rank
``(i, j)`` owns the ``C`` blocks ``A^(s)_{i,j}`` — the matrix entries whose
row falls in block row ``s*R + i`` (any ``s``) and whose column falls in
column chunk ``j``.  Rank ``(i, j)`` *owns* the vertices of block row
``j*R + i``.

A vertex's edge list is a *column* of the adjacency matrix, so the partial
edge lists of a vertex owned by rank ``(i, j)`` live on the ranks of
processor-column ``j`` — which is why the *expand* runs down processor
columns.  The neighbours a rank discovers fall in its stored block rows,
whose owners all sit in processor-row ``i`` — which is why the *fold* runs
across processor rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CsrGraph
from repro.partition.base import BlockDistribution, Partition
from repro.partition.indexing import VertexIndexMap
from repro.types import VERTEX_DTYPE, GridShape, as_vertex_array


@dataclass(frozen=True, slots=True)
class RankLocal2D:
    """Per-rank storage for the 2D layout.

    The stored blocks are kept as *column edge lists* in CSR-of-columns
    form: ``col_map.ids[c]`` is a global vertex id with a non-empty partial
    edge list on this rank, and ``rows[col_indptr[c]:col_indptr[c+1]]`` are
    the (global) row ids adjacent to it here.  Only non-empty columns are
    indexed — the Section 2.4.1 memory optimisation that keeps storage
    O(n/P) in expectation.
    """

    rank: int
    mesh_row: int
    mesh_col: int
    vertex_lo: int
    vertex_hi: int
    col_map: VertexIndexMap
    col_indptr: np.ndarray
    rows: np.ndarray
    row_map: VertexIndexMap

    @property
    def num_owned(self) -> int:
        """Number of vertices owned by this rank."""
        return self.vertex_hi - self.vertex_lo

    @property
    def num_stored_entries(self) -> int:
        """Number of adjacency-matrix entries stored on this rank."""
        return int(self.rows.shape[0])

    @property
    def num_nonempty_columns(self) -> int:
        """Number of non-empty partial edge lists (Section 2.4.1 bound)."""
        return len(self.col_map)

    @property
    def num_unique_row_vertices(self) -> int:
        """Unique vertices appearing in stored edge lists (Section 2.4.1 bound)."""
        return len(self.row_map)

    def partial_neighbors(self, frontier_global: np.ndarray) -> np.ndarray:
        """Merge the stored partial edge lists of the given frontier vertices.

        ``frontier_global`` is the column-expanded frontier ``F-bar``
        (Algorithm 2, step 12); vertices without a partial list here are
        skipped.  Returns global row ids, duplicates included.
        """
        frontier_global = as_vertex_array(frontier_global)
        if frontier_global.size == 0:
            return np.empty(0, dtype=VERTEX_DTYPE)
        _, local_cols = self.col_map.to_local_partial(frontier_global)
        if local_cols.size == 0:
            return np.empty(0, dtype=VERTEX_DTYPE)
        starts = self.col_indptr[local_cols]
        stops = self.col_indptr[local_cols + 1]
        lengths = stops - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=VERTEX_DTYPE)
        out_offsets = np.concatenate(([0], np.cumsum(lengths)))
        gather = np.arange(total, dtype=VERTEX_DTYPE)
        gather += np.repeat(starts - out_offsets[:-1], lengths)
        return self.rows[gather]


class TwoDPartition(Partition):
    """An ``R x C`` 2D edge partitioning of an undirected graph."""

    def __init__(self, graph: CsrGraph, grid: GridShape) -> None:
        self.n = graph.n
        self.grid = grid
        #: block-row distribution: n vertices over R*C contiguous block rows
        self.dist = BlockDistribution(graph.n, grid.size)
        self._locals: list[RankLocal2D] = self._build_locals(graph)

    @classmethod
    def from_locals(
        cls, n: int, grid: GridShape, locals_: list[RankLocal2D]
    ) -> "TwoDPartition":
        """Assemble a partition from pre-built per-rank structures.

        Used by the distributed generator
        (:class:`repro.graph.distributed_gen.DistributedGraphBuilder`),
        which produces each rank's blocks without materialising the global
        graph.
        """
        if len(locals_) != grid.size:
            raise PartitionError(
                f"need {grid.size} rank structures, got {len(locals_)}"
            )
        partition = cls.__new__(cls)
        partition.n = int(n)
        partition.grid = grid
        partition.dist = BlockDistribution(n, grid.size)
        for rank, loc in enumerate(locals_):
            if loc.rank != rank:
                raise PartitionError(
                    f"rank structure {loc.rank} supplied at position {rank}"
                )
        partition._locals = list(locals_)
        return partition

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_locals(self, graph: CsrGraph) -> list[RankLocal2D]:
        R, C = self.grid.rows, self.grid.cols
        # Every stored directed entry A[u, v]: row u, column v.
        src = np.repeat(
            np.arange(graph.n, dtype=VERTEX_DTYPE), np.diff(graph.indptr)
        )
        dst = graph.indices
        # Owning rank of entry (u, v): mesh row = blockrow(u) mod R,
        # mesh col = column chunk of v = blockrow(v) div R.
        u_block = self.dist.part_of(src) if src.size else src
        v_block = self.dist.part_of(dst) if dst.size else dst
        mesh_i = u_block % R
        mesh_j = v_block // R
        rank_of_entry = mesh_i * C + mesh_j

        order = np.lexsort((src, dst, rank_of_entry)) if src.size else np.empty(0, np.int64)
        src, dst, rank_of_entry = src[order], dst[order], rank_of_entry[order]
        boundaries = np.searchsorted(rank_of_entry, np.arange(self.nranks + 1))

        locals_: list[RankLocal2D] = []
        for rank in range(self.nranks):
            i, j = self.grid.coords_of(rank)
            lo_entry, hi_entry = int(boundaries[rank]), int(boundaries[rank + 1])
            cols = dst[lo_entry:hi_entry]  # sorted (by dst, then src)
            rows = src[lo_entry:hi_entry]
            # cols is sorted, so unique + counts fall out of the run
            # boundaries (identical to np.unique with return_counts).
            if cols.size:
                change = np.concatenate(([True], cols[1:] != cols[:-1]))
                col_ids = cols[change]
                col_starts = np.flatnonzero(change)
                col_indptr = np.concatenate(
                    (col_starts, [cols.size])
                ).astype(VERTEX_DTYPE)
            else:
                col_ids = cols
                col_indptr = np.zeros(1, dtype=VERTEX_DTYPE)
            own_block = j * R + i
            lo, hi = self.dist.range_of(own_block)
            locals_.append(
                RankLocal2D(
                    rank=rank,
                    mesh_row=i,
                    mesh_col=j,
                    vertex_lo=lo,
                    vertex_hi=hi,
                    col_map=VertexIndexMap(col_ids),
                    col_indptr=col_indptr,
                    rows=rows.copy(),
                    row_map=VertexIndexMap(rows),
                )
            )
        return locals_

    # ------------------------------------------------------------------ #
    # ownership
    # ------------------------------------------------------------------ #
    def owner_of(self, vertices) -> np.ndarray:
        """Mesh owner of each vertex: block row ``g`` maps to rank ``(g % R, g // R)``."""
        R, C = self.grid.rows, self.grid.cols
        g = self.dist.part_of(vertices)
        return (g % R) * C + (g // R)

    def owned_vertices(self, rank: int) -> np.ndarray:
        loc = self.local(rank)
        return np.arange(loc.vertex_lo, loc.vertex_hi, dtype=VERTEX_DTYPE)

    def column_chunk_range(self, mesh_col: int) -> tuple[int, int]:
        """Global vertex range whose edge lists live on processor-column ``mesh_col``."""
        R = self.grid.rows
        if not (0 <= mesh_col < self.grid.cols):
            raise PartitionError(f"mesh column {mesh_col} out of range")
        lo = int(self.dist.offsets[mesh_col * R])
        hi = int(self.dist.offsets[(mesh_col + 1) * R])
        return lo, hi

    def local(self, rank: int) -> RankLocal2D:
        """Per-rank storage object."""
        if not (0 <= rank < self.nranks):
            raise PartitionError(f"rank {rank} out of range [0, {self.nranks})")
        return self._locals[rank]

    def memory_footprint(self, rank: int) -> dict[str, int]:
        loc = self.local(rank)
        return {
            "owned_vertices": loc.num_owned,
            "edge_entries": loc.num_stored_entries,
            "nonempty_columns": loc.num_nonempty_columns,
            "unique_row_vertices": loc.num_unique_row_vertices,
        }
