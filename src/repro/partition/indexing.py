"""Global-to-local vertex index mappings (Section 2.4.2).

The paper maps global vertex indices to dense local indices "through
hashing" so that per-vertex state (levels, sent-neighbour flags) is stored
in O(n/P) arrays.  This implementation keeps the same contract and the same
asymptotic storage but uses a sorted id array + binary search
(``np.searchsorted``) instead of a hash table: lookups vectorise over whole
frontiers, which is the idiomatic NumPy replacement for a per-element hash
probe (see DESIGN.md).  The paper's profiling note — that hashing received
vertices dominates runtime — is modelled in the machine cost model as a
per-lookup charge, so the *simulated* cost is still hash-like.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.types import VERTEX_DTYPE, as_vertex_array


class VertexIndexMap:
    """Bidirectional map between a set of global vertex ids and ``0..len-1``.

    Local indices follow the sorted order of the global ids, so the map is
    deterministic for a given id set.
    """

    __slots__ = ("ids",)

    def __init__(self, global_ids) -> None:
        ids = as_vertex_array(global_ids)
        # sorted + deduplicated (np.unique semantics via sort + mask,
        # which is cheaper on the mostly-sorted inputs partitions produce)
        if ids.size:
            ids = np.sort(ids)
            ids = ids[np.concatenate(([True], ids[1:] != ids[:-1]))]
        self.ids = ids

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def to_local(self, global_ids) -> np.ndarray:
        """Local indices of ``global_ids``; raises if any id is unmapped."""
        global_ids = as_vertex_array(global_ids)
        pos = np.searchsorted(self.ids, global_ids)
        ok = (pos < len(self)) & (self.ids[np.minimum(pos, len(self) - 1)] == global_ids) \
            if len(self) else np.zeros(global_ids.shape, dtype=bool)
        if not ok.all():
            missing = global_ids[~ok][:5]
            raise PartitionError(f"global ids not present in this map: {missing.tolist()}...")
        return pos.astype(VERTEX_DTYPE)

    def to_local_partial(self, global_ids) -> tuple[np.ndarray, np.ndarray]:
        """Local indices for the mapped subset of ``global_ids``.

        Returns ``(mask, local)`` where ``mask`` marks which inputs are
        present and ``local`` gives their local indices (length
        ``mask.sum()``).  Unmapped ids are simply skipped — the common case
        during the fold, where a rank receives vertices it has never seen.
        """
        global_ids = as_vertex_array(global_ids)
        if len(self) == 0:
            return np.zeros(global_ids.shape, dtype=bool), np.empty(0, dtype=VERTEX_DTYPE)
        pos = np.searchsorted(self.ids, global_ids)
        pos_c = np.minimum(pos, len(self) - 1)
        mask = self.ids[pos_c] == global_ids
        return mask, pos_c[mask].astype(VERTEX_DTYPE)

    def to_global(self, local_ids) -> np.ndarray:
        """Global ids of ``local_ids`` (vectorised array lookup)."""
        local_ids = as_vertex_array(local_ids)
        if local_ids.size and (local_ids.min() < 0 or local_ids.max() >= len(self)):
            raise PartitionError("local ids out of range")
        return self.ids[local_ids]

    def contains(self, global_ids) -> np.ndarray:
        """Boolean membership mask for ``global_ids``."""
        mask, _ = self.to_local_partial(global_ids)
        return mask
