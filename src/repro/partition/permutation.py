"""Random vertex relabeling for load balance on skewed graphs.

The paper's block partitionings assume Poisson random graphs, whose
uniform structure makes contiguous blocks naturally balanced.  Skewed
workloads (e.g. the R-MAT extension generator, whose hubs concentrate at
low vertex ids) break that assumption badly.  The standard fix — used by
Graph500 reference implementations descended from this paper — is to
apply a random vertex permutation before partitioning.  This module
implements that relabeling and the bookkeeping to map results back to the
original ids.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CsrGraph
from repro.types import LEVEL_DTYPE, VERTEX_DTYPE, as_vertex_array
from repro.utils.rng import RngFactory


class VertexRelabeling:
    """A bijection between original vertex ids and relabeled ids."""

    __slots__ = ("to_new", "to_old")

    def __init__(self, to_new: np.ndarray) -> None:
        to_new = np.ascontiguousarray(to_new, dtype=VERTEX_DTYPE)
        n = to_new.shape[0]
        if n and (np.sort(to_new) != np.arange(n)).any():
            raise PartitionError("relabeling must be a permutation of 0..n-1")
        self.to_new = to_new
        self.to_old = np.empty(n, dtype=VERTEX_DTYPE)
        self.to_old[to_new] = np.arange(n, dtype=VERTEX_DTYPE)

    @property
    def n(self) -> int:
        """Number of vertices covered by the bijection."""
        return int(self.to_new.shape[0])

    @classmethod
    def random(cls, n: int, seed: int = 0) -> "VertexRelabeling":
        """Uniformly random permutation of ``n`` vertices (seeded)."""
        rng = RngFactory(seed).named("vertex-relabeling")
        return cls(rng.permutation(n).astype(VERTEX_DTYPE))

    @classmethod
    def identity(cls, n: int) -> "VertexRelabeling":
        """The do-nothing relabeling."""
        return cls(np.arange(n, dtype=VERTEX_DTYPE))

    # ------------------------------------------------------------------ #
    # id translation
    # ------------------------------------------------------------------ #
    def new_id(self, old_ids) -> np.ndarray:
        """Relabeled id(s) of original id(s)."""
        old_ids = as_vertex_array(old_ids)
        self._check(old_ids)
        return self.to_new[old_ids]

    def old_id(self, new_ids) -> np.ndarray:
        """Original id(s) of relabeled id(s)."""
        new_ids = as_vertex_array(new_ids)
        self._check(new_ids)
        return self.to_old[new_ids]

    def apply(self, graph: CsrGraph) -> CsrGraph:
        """Return ``graph`` with every vertex renamed through the bijection."""
        if graph.n != self.n:
            raise PartitionError(f"graph has {graph.n} vertices, relabeling covers {self.n}")
        edges = graph.edge_array()
        if edges.size:
            edges = self.to_new[edges]
        return CsrGraph.from_edges(graph.n, edges)

    def restore_levels(self, levels_new: np.ndarray) -> np.ndarray:
        """Map a level array computed on the relabeled graph back to original ids."""
        levels_new = np.asarray(levels_new, dtype=LEVEL_DTYPE)
        if levels_new.shape != (self.n,):
            raise PartitionError(f"level array must have shape ({self.n},)")
        return levels_new[self.to_new]

    def _check(self, ids: np.ndarray) -> None:
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise PartitionError("vertex ids out of range for this relabeling")


def relabel_graph(graph: CsrGraph, seed: int = 0) -> tuple[CsrGraph, VertexRelabeling]:
    """Convenience: random relabeling + relabeled graph in one call."""
    relabeling = VertexRelabeling.random(graph.n, seed)
    return relabeling.apply(graph), relabeling
