"""Degree-aware vertex relabeling for skewed (scale-free) graphs.

Random relabeling (:mod:`repro.partition.permutation`) fixes the *spatial*
clustering of R-MAT hubs but distributes them across blocks only in
expectation — with ``n / nranks`` vertices per block the heaviest hubs
still land wherever the permutation happens to put them, and on small
rank counts one unlucky block can carry several of the top hubs at once.

The degree-aware relabeling here removes that variance deterministically:
vertices are sorted by degree (descending) and dealt round-robin across
the ``nblocks`` contiguous blocks the block distribution will create, so
every block receives an equal share of each degree stratum — hub number
``i`` goes to block ``i % nblocks``.  Ties are broken by vertex id, which
keeps the permutation fully deterministic (no RNG involved).

The result is an ordinary :class:`VertexRelabeling`, so the session-level
plumbing (apply before partitioning, ``restore_levels`` after the run) is
shared with the random strategy.  Balance is quantified with
:func:`repro.partition.balance.balance_report` in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CsrGraph
from repro.partition.permutation import VertexRelabeling
from repro.types import VERTEX_DTYPE


def degree_aware_relabeling(graph: CsrGraph, nblocks: int) -> VertexRelabeling:
    """Hub-balancing permutation: deal vertices round-robin by degree.

    ``nblocks`` is the number of contiguous blocks the downstream block
    distribution will cut the id space into (``nranks`` for 1D, ``R*C``
    for the 2D layout).  Vertex ranks in the degree-descending order are
    assigned new ids so that rank ``i`` lands in block ``i % nblocks`` —
    each block gets (up to rounding) the same number of vertices from
    every degree stratum, so hub-heavy and tail-heavy blocks cannot occur.
    """
    if nblocks < 1:
        raise PartitionError(f"nblocks must be >= 1, got {nblocks}")
    n = graph.n
    if nblocks > max(n, 1):
        raise PartitionError(f"nblocks={nblocks} exceeds vertex count {n}")
    degrees = graph.degree()
    # stable sort on -degree: ties broken by ascending vertex id
    order = np.argsort(-degrees, kind="stable")
    # Deal position i (0 = heaviest hub) to block i % nblocks.  Blocks are
    # contiguous id ranges of size ceil/floor(n / nblocks) exactly as
    # BlockDistribution cuts them, so compute each position's target id by
    # walking blocks in round-robin order.
    base, extra = divmod(n, nblocks)
    block_sizes = np.full(nblocks, base, dtype=np.int64)
    block_sizes[:extra] += 1
    block_starts = np.concatenate(([0], np.cumsum(block_sizes)))[:-1]
    positions = np.arange(n, dtype=np.int64)
    block_of = positions % nblocks
    round_of = positions // nblocks
    # Round r only reaches blocks that still have capacity; with sizes
    # differing by at most one, only the final round can be partial and it
    # fills blocks 0..extra-1 — which is exactly where the larger blocks
    # are, so slot `round_of` is always in range.
    new_ids = block_starts[block_of] + round_of
    to_new = np.empty(n, dtype=VERTEX_DTYPE)
    to_new[order] = new_ids.astype(VERTEX_DTYPE)
    return VertexRelabeling(to_new)
