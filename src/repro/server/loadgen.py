"""Load generator and throughput gate for the BFS session server.

Drives a :class:`~repro.server.service.BfsService` with a stream of
random queries two ways — **batched** (queries submitted concurrently,
the service packs each idle-worker drain into one MS-BFS traversal) and
**sequential** (the same queries dispatched one traversal per query) —
and reports host-side queries/second with p50/p99 per-query wall latency
for both.  The batched/sequential ratio is the speedup the server
architecture exists to deliver; the gate requires it ≥ 3x at 64
concurrent sources.

A third pass re-runs the batched and sequential modes against a session
carrying a fault schedule (``--faults``, default ``crash-spare``): the
checkpointed MS-BFS path recovers inside the batch, every faulted reply
is digest-verified against the fault-free sequential answers, and the
faulted-batched/faulted-sequential ratio must stay ≥ 5x — serving under
faults must not quietly fall back to sequential throughput.

    PYTHONPATH=src python -m repro.server.loadgen
    PYTHONPATH=src python -m repro.server.loadgen --tiny --check
    PYTHONPATH=src python -m repro.server.loadgen --transport tcp

Writes ``BENCH_server.json`` (repo root by default).  ``--check``
compares batched throughput and speedup against the committed baseline
(``benchmarks/server_baseline.json``); refresh it with
``--update-baseline`` after an intentional change.  Every batched reply
is digest-verified against a sequential reply for the same query — the
byte-identity contract, enforced under load.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path

import numpy as np

from repro.faults import FaultSpec
from repro.graph.generators import poisson_random_graph
from repro.server.protocol import QueryReply
from repro.server.service import BfsService, QueryClient, TcpQueryClient, serve_tcp
from repro.session import BfsSession
from repro.types import GraphSpec, GridShape

REPO_ROOT = Path(__file__).resolve().parents[3]
BASELINE_PATH = REPO_ROOT / "benchmarks" / "server_baseline.json"

FULL = {"n": 20_000, "k": 8.0, "graph_seed": 7, "grid": (4, 4), "queries": 512}
TINY = {"n": 2_000, "k": 8.0, "graph_seed": 7, "grid": (2, 2), "queries": 128}


def _percentile_ms(latencies: list[float], q: float) -> float:
    if not latencies:
        return 0.0
    return round(float(np.percentile(np.array(latencies), q * 100.0)) * 1e3, 3)


async def _drive(
    client, sources: list[int], concurrency: int
) -> tuple[list[QueryReply], list[float], float]:
    """Answer every query keeping ``concurrency`` in flight; FIFO order.

    Returns (replies, per-query wall latencies, total wall seconds).
    """
    replies: list[QueryReply | None] = [None] * len(sources)
    latencies: list[float] = [0.0] * len(sources)
    next_index = 0
    lock = asyncio.Lock()

    async def worker(conn) -> None:
        nonlocal next_index
        while True:
            async with lock:
                i = next_index
                if i >= len(sources):
                    return
                next_index += 1
            t0 = time.perf_counter()
            replies[i] = await conn.query(sources[i])
            latencies[i] = time.perf_counter() - t0

    t0 = time.perf_counter()
    if isinstance(client, list):  # one TCP connection per in-flight slot
        await asyncio.gather(*(worker(conn) for conn in client))
    else:
        await asyncio.gather(*(worker(client) for _ in range(concurrency)))
    wall = time.perf_counter() - t0
    return list(replies), latencies, wall


async def _run_mode(
    session: BfsSession,
    sources: list[int],
    *,
    batching: bool,
    concurrency: int,
    transport: str,
    host: str,
    port: int,
    label: str | None = None,
) -> tuple[list[QueryReply], dict]:
    service = BfsService(session, batching=batching)
    if transport == "tcp":
        server = await serve_tcp(service, host, port)
        bound_port = server.sockets[0].getsockname()[1]
        conns = [
            await TcpQueryClient(host, bound_port).connect()
            for _ in range(concurrency)
        ]
        try:
            replies, latencies, wall = await _drive(conns, sources, concurrency)
        finally:
            for conn in conns:
                await conn.close()
            server.close()
            await server.wait_closed()
            await service.close()
    else:
        async with service:
            replies, latencies, wall = await _drive(
                QueryClient(service), sources, concurrency
            )
    snap = service.metrics.snapshot()
    report = {
        "mode": label or ("batched" if batching else "sequential"),
        "queries": len(sources),
        "concurrency": concurrency,
        "wall_s": round(wall, 6),
        "qps": round(len(sources) / wall, 2),
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
        "batches": snap["batches"],
        "mean_batch_size": snap["mean_batch_size"],
        "max_queue_depth": snap["max_queue_depth"],
        "fault_retries": snap["fault_retries"],
        "fault_failures": snap["fault_failures"],
        "simulated_s": round(snap["simulated_seconds"], 6),
    }
    return replies, report


def _verify(batched: list[QueryReply], sequential: list[QueryReply]) -> int:
    """Digest-compare batched replies against sequential ones; count diffs."""
    mismatches = 0
    for b, s in zip(batched, sequential):
        if not (b.ok and s.ok):
            mismatches += 1
            continue
        if b.result["levels_digest"] != s.result["levels_digest"]:
            mismatches += 1
    return mismatches


def check(report: dict, baseline_path: Path, tolerance: float) -> int:
    """Gate against the committed baseline; exit status for ``--check``."""
    speedup_floor = 3.0
    faulted_floor = 5.0
    failures = []
    if report["speedup"] < speedup_floor:
        failures.append(
            f"speedup {report['speedup']:.2f}x below required {speedup_floor:.1f}x"
        )
    if "faulted" in report and report["faulted_speedup"] < faulted_floor:
        failures.append(
            f"faulted speedup {report['faulted_speedup']:.2f}x below required "
            f"{faulted_floor:.1f}x — faulted batches must not degrade to "
            "sequential throughput"
        )
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; run with --update-baseline first")
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    key = "tiny" if report["tiny"] else "full"
    base = baseline.get(key)
    if base is not None:
        floor = base["batched"]["qps"] * (1.0 - tolerance)
        status = "ok" if report["batched"]["qps"] >= floor else "REGRESSION"
        print(
            f"  batched {report['batched']['qps']:.1f} q/s "
            f"(baseline {base['batched']['qps']:.1f}, floor {floor:.1f})  {status}"
        )
        if status != "ok":
            failures.append(
                f"batched throughput below {floor:.1f} q/s "
                f"(-{tolerance:.0%} of baseline)"
            )
        if "faulted" in report and "faulted" in base:
            ffloor = base["faulted"]["qps"] * (1.0 - tolerance)
            fstatus = "ok" if report["faulted"]["qps"] >= ffloor else "REGRESSION"
            print(
                f"  faulted {report['faulted']['qps']:.1f} q/s "
                f"(baseline {base['faulted']['qps']:.1f}, floor {ffloor:.1f})  "
                f"{fstatus}"
            )
            if fstatus != "ok":
                failures.append(
                    f"faulted throughput below {ffloor:.1f} q/s "
                    f"(-{tolerance:.0%} of baseline)"
                )
    print(f"  speedup {report['speedup']:.2f}x (floor {speedup_floor:.1f}x)")
    if "faulted" in report:
        print(f"  faulted speedup {report['faulted_speedup']:.2f}x "
              f"(floor {faulted_floor:.1f}x)")
    if failures:
        for f in failures:
            print(f"GATE FAILURE: {f}")
        return 1
    print("server throughput within tolerance of baseline")
    return 0


async def run(args) -> dict:
    workload = TINY if args.tiny else FULL
    n = args.graph_n or workload["n"]
    num_queries = args.queries or workload["queries"]
    grid = GridShape(*(args.grid or workload["grid"]))
    graph = poisson_random_graph(
        GraphSpec(n=n, k=workload["k"], seed=workload["graph_seed"])
    )
    rng = np.random.default_rng(args.seed)
    sources = [int(s) for s in rng.integers(0, n, size=num_queries)]

    def fresh_session(faults: FaultSpec | None = None) -> BfsSession:
        return BfsSession(graph, grid, system=args.system, faults=faults)

    print(
        f"server loadgen ({'tiny' if args.tiny else 'full'}): n={n}, "
        f"grid={grid.rows}x{grid.cols}, {num_queries} queries, "
        f"concurrency={args.concurrency}, transport={args.transport}"
    )
    batched_replies, batched = await _run_mode(
        fresh_session(), sources, batching=True, concurrency=args.concurrency,
        transport=args.transport, host=args.host, port=args.port,
    )
    print(
        f"  batched:    {batched['qps']:>9.1f} q/s  p50={batched['p50_ms']}ms "
        f"p99={batched['p99_ms']}ms  mean_batch={batched['mean_batch_size']}"
    )
    sequential_replies, sequential = await _run_mode(
        fresh_session(), sources, batching=False, concurrency=args.concurrency,
        transport=args.transport, host=args.host, port=args.port,
    )
    print(
        f"  sequential: {sequential['qps']:>9.1f} q/s  p50={sequential['p50_ms']}ms "
        f"p99={sequential['p99_ms']}ms"
    )
    answered = sum(1 for r in batched_replies if r is not None and r.ok)
    mismatches = _verify(batched_replies, sequential_replies)
    speedup = round(batched["qps"] / sequential["qps"], 3) if sequential["qps"] else 0.0
    print(f"  speedup: {speedup}x; {answered}/{num_queries} answered, "
          f"{mismatches} digest mismatches")

    report = {
        "workload": {"n": n, "k": workload["k"], "graph_seed": workload["graph_seed"],
                     "grid": f"{grid.rows}x{grid.cols}", "system": args.system,
                     "queries": num_queries, "concurrency": args.concurrency,
                     "transport": args.transport, "query_seed": args.seed,
                     "faults": args.faults},
        "tiny": args.tiny,
        "batched": batched,
        "sequential": sequential,
        "speedup": speedup,
        "answered": answered,
        "digest_mismatches": mismatches,
    }
    if args.faults != "none":
        spec = FaultSpec.parse(args.faults)
        faulted_replies, faulted = await _run_mode(
            fresh_session(spec), sources, batching=True,
            concurrency=args.concurrency, transport=args.transport,
            host=args.host, port=args.port, label="faulted-batched",
        )
        print(
            f"  faulted-batched ({args.faults}): {faulted['qps']:>9.1f} q/s  "
            f"p50={faulted['p50_ms']}ms p99={faulted['p99_ms']}ms  "
            f"retries={faulted['fault_retries']} "
            f"failures={faulted['fault_failures']}"
        )
        faulted_seq_replies, faulted_seq = await _run_mode(
            fresh_session(spec), sources, batching=False,
            concurrency=args.concurrency, transport=args.transport,
            host=args.host, port=args.port, label="faulted-sequential",
        )
        print(
            f"  faulted-sequential:       {faulted_seq['qps']:>9.1f} q/s  "
            f"p50={faulted_seq['p50_ms']}ms p99={faulted_seq['p99_ms']}ms"
        )
        # byte-identity under faults: every faulted reply (batched and
        # sequential dispatch alike) must carry the fault-free digest
        faulted_mismatches = _verify(faulted_replies, sequential_replies)
        faulted_mismatches += _verify(faulted_seq_replies, sequential_replies)
        faulted_answered = sum(
            1 for r in faulted_replies if r is not None and r.ok
        )
        faulted_speedup = (
            round(faulted["qps"] / faulted_seq["qps"], 3)
            if faulted_seq["qps"] else 0.0
        )
        print(f"  faulted speedup: {faulted_speedup}x; "
              f"{faulted_answered}/{num_queries} answered, "
              f"{faulted_mismatches} digest mismatches vs fault-free")
        report["faulted"] = faulted
        report["faulted_sequential"] = faulted_seq
        report["faulted_speedup"] = faulted_speedup
        report["faulted_answered"] = faulted_answered
        report["faulted_digest_mismatches"] = faulted_mismatches
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke size (n=2k, 128 queries, 2x2 grid)")
    parser.add_argument("--queries", type=int, default=None,
                        help="number of queries (default: workload size)")
    parser.add_argument("--concurrency", type=int, default=64,
                        help="in-flight queries (default 64)")
    parser.add_argument("--graph-n", type=int, default=None,
                        help="override graph size")
    parser.add_argument("--grid", type=int, nargs=2, default=None,
                        metavar=("R", "C"), help="override the processor mesh")
    parser.add_argument("--system", default="bluegene-2d",
                        help="SystemSpec preset for the session (default bluegene-2d)")
    parser.add_argument("--seed", type=int, default=1234,
                        help="query-stream seed (default 1234)")
    parser.add_argument("--faults", default="crash-spare",
                        help="fault schedule for the faulted pass: a preset "
                             "name, key=value string, or 'none' to skip "
                             "(default crash-spare)")
    parser.add_argument("--transport", choices=("inproc", "tcp"), default="inproc",
                        help="drive the service in-process or over TCP")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral)")
    parser.add_argument("--check", action="store_true",
                        help="gate against the committed baseline; exit 1 on failure")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write this run's numbers into the baseline file")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional qps drop for --check (default 0.40)")
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_server.json",
                        help="where to write the report JSON")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    args = parser.parse_args(argv)

    report = asyncio.run(run(args))
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    if report["digest_mismatches"]:
        print(f"GATE FAILURE: {report['digest_mismatches']} batched replies "
              "disagree with sequential digests")
        return 1
    if report["answered"] != report["workload"]["queries"]:
        print("GATE FAILURE: not every query was answered")
        return 1
    if "faulted" in report:
        if report["faulted_digest_mismatches"]:
            print(f"GATE FAILURE: {report['faulted_digest_mismatches']} faulted "
                  "replies disagree with fault-free digests")
            return 1
        if report["faulted_answered"] != report["workload"]["queries"]:
            print("GATE FAILURE: not every faulted query was answered")
            return 1

    if args.update_baseline:
        baseline = (
            json.loads(args.baseline.read_text(encoding="utf-8"))
            if args.baseline.exists() else {}
        )
        entry = {
            "batched": {"qps": report["batched"]["qps"]},
            "sequential": {"qps": report["sequential"]["qps"]},
            "speedup": report["speedup"],
        }
        if "faulted" in report:
            entry["faulted"] = {"qps": report["faulted"]["qps"]}
            entry["faulted_speedup"] = report["faulted_speedup"]
        baseline["tiny" if args.tiny else "full"] = entry
        args.baseline.write_text(
            json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
        )
        print(f"updated baseline {args.baseline}")

    if args.check:
        return check(report, args.baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
