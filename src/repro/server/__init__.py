"""BFS-as-a-service: a long-lived session server over one partitioned graph.

The paper's application — relationship queries on a semantic graph with
"millions of users" — is a *serving* workload: the graph is partitioned
once and queried continuously.  This package provides that shape:

* :mod:`repro.server.protocol` — the JSON-lines wire protocol
  (:class:`Query` in, :class:`QueryReply` out).
* :mod:`repro.server.service` — :class:`BfsService`, an asyncio front
  end over one :class:`~repro.session.BfsSession` that admits queries,
  batches concurrent sources into single MS-BFS traversals, and exposes
  queue/latency metrics; :class:`QueryClient` (in-process) and
  :class:`TcpQueryClient` (socket) drive it.
* :mod:`repro.server.loadgen` — the load generator and throughput gate
  behind ``BENCH_server.json``.

Start a TCP server from the command line with ``repro-bfs serve``.
"""

from repro.server.protocol import ProtocolError, Query, QueryReply
from repro.server.service import (
    BfsService,
    QueryClient,
    ServerMetrics,
    TcpQueryClient,
    serve_tcp,
)

__all__ = [
    "ProtocolError",
    "Query",
    "QueryReply",
    "BfsService",
    "QueryClient",
    "ServerMetrics",
    "TcpQueryClient",
    "serve_tcp",
]
