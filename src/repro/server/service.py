"""The asyncio session service: admit, batch, traverse, reply.

:class:`BfsService` fronts one :class:`~repro.session.BfsSession`.  The
partitioned graph, torus mapping, and engine caches are built once (by
the session); queries stream in and are answered from that shared state.
The service's job is the serving-side machinery:

* **Admission control** — a bounded queue; a query arriving with
  ``max_queue`` already waiting is rejected immediately with an
  ``"overloaded"`` reply instead of growing the backlog without bound.
* **Batching** — a drain loop collects every query waiting when the
  worker goes idle (up to ``max_batch``, at most 64 — one mask bit per
  source) and runs them as *one* MS-BFS traversal.  Under load, batches
  grow naturally: the deeper the queue, the more queries each traversal
  amortizes.  A single-entry batch degrades to a plain sequential query.
* **Serialization** — traversals mutate the session's re-entrant engine,
  so they all run on one worker thread; concurrency lives in the asyncio
  front end, not in the traversal.
* **Metrics** — queue depth, batch sizes, per-query wall latency, served
  and rejected counts, exported through
  :class:`~repro.observability.metrics.MetricsRegistry`.

Two clients are provided: :class:`QueryClient` calls the service
in-process (the loadgen's default), and :class:`TcpQueryClient` speaks
the JSON-lines protocol over a socket to a :func:`serve_tcp` server.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.bfs.msbfs import MAX_BATCH
from repro.errors import ReproError
from repro.observability.metrics import MetricsRegistry
from repro.server.protocol import ProtocolError, Query, QueryReply, decode_request
from repro.session import BfsSession

__all__ = ["BfsService", "QueryClient", "ServerMetrics", "TcpQueryClient", "serve_tcp"]


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(slots=True)
class ServerMetrics:
    """Counters and latency samples for one service lifetime."""

    served: int = 0
    rejected: int = 0
    failed: int = 0
    batches: int = 0
    batched_queries: int = 0
    max_queue_depth: int = 0
    #: per-query wall latency (seconds, submit -> reply)
    wall_latencies: list[float] = field(default_factory=list)
    #: simulated seconds per traversal
    simulated_seconds: float = 0.0

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def observe_batch(self, size: int, simulated: float) -> None:
        self.batches += 1
        self.batched_queries += size
        self.simulated_seconds += simulated

    def observe_reply(self, wall_seconds: float) -> None:
        self.served += 1
        self.wall_latencies.append(wall_seconds)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_queries / self.batches if self.batches else 0.0

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view (the ``stats`` op's reply payload)."""
        return {
            "served": self.served,
            "rejected": self.rejected,
            "failed": self.failed,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "max_queue_depth": self.max_queue_depth,
            "wall_p50_ms": round(_percentile(self.wall_latencies, 0.50) * 1e3, 3),
            "wall_p99_ms": round(_percentile(self.wall_latencies, 0.99) * 1e3, 3),
            "simulated_seconds": self.simulated_seconds,
        }

    def registry(self) -> MetricsRegistry:
        """The snapshot as ``server_*`` samples in the unified schema."""
        reg = MetricsRegistry()
        reg.record("server_queries_total", self.served, outcome="served")
        reg.record("server_queries_total", self.rejected, outcome="rejected")
        reg.record("server_queries_total", self.failed, outcome="failed")
        reg.record("server_batches_total", self.batches)
        reg.record("server_batch_size_mean", self.mean_batch_size)
        reg.record("server_queue_depth_max", self.max_queue_depth)
        reg.record(
            "server_latency_seconds", _percentile(self.wall_latencies, 0.50), q="0.50"
        )
        reg.record(
            "server_latency_seconds", _percentile(self.wall_latencies, 0.99), q="0.99"
        )
        reg.record("server_simulated_seconds_total", self.simulated_seconds)
        return reg


@dataclass(slots=True)
class _Pending:
    query: Query
    future: asyncio.Future
    enqueued_at: float


class BfsService:
    """Batching asyncio front end over one :class:`BfsSession`.

    ``max_batch`` caps sources per traversal (at most 64); ``max_queue``
    is the admission bound; ``batching=False`` pins every traversal to a
    single source (the sequential-dispatch mode the load generator
    compares against).
    """

    def __init__(
        self,
        session: BfsSession,
        *,
        max_batch: int = MAX_BATCH,
        max_queue: int = 1024,
        batching: bool = True,
    ) -> None:
        if not (1 <= max_batch <= MAX_BATCH):
            raise ReproError(
                f"max_batch must be in [1, {MAX_BATCH}], got {max_batch}"
            )
        if session.system.faults is not None and batching:
            # MS-BFS cannot replay lost chunks; serve faulted systems
            # one query at a time
            batching = False
        self.session = session
        self.max_batch = max_batch if batching else 1
        self.max_queue = max_queue
        self.metrics = ServerMetrics()
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="bfs-worker"
        )
        self._batcher: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "BfsService":
        """Start the batch loop; idempotent."""
        if self._batcher is None:
            self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())
        return self

    async def close(self) -> None:
        """Drain nothing further; cancel the loop and release the worker."""
        self._closed = True
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        while not self._queue.empty():  # pragma: no cover - close-race drain
            pending = self._queue.get_nowait()
            if not pending.future.done():
                pending.future.set_result(
                    QueryReply(ok=False, id=pending.query.id, error="server closed")
                )
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "BfsService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def submit(self, query: Query) -> QueryReply:
        """Admit ``query`` and await its reply.

        Rejects immediately (``"overloaded"``) when ``max_queue`` queries
        are already waiting — the backlog never grows without bound.
        """
        if self._closed:
            return QueryReply(ok=False, id=query.id, error="server closed")
        n = self.session.graph.n
        for label, vertex in (("source", query.source), ("target", query.target)):
            if vertex is not None and not (0 <= vertex < n):
                # reject up front: one bad vertex must not fail the whole
                # batch it would have ridden in
                return QueryReply(
                    ok=False, id=query.id,
                    error=f"{label} {vertex} out of range [0, {n})",
                )
        if self._queue.qsize() >= self.max_queue:
            self.metrics.rejected += 1
            return QueryReply(ok=False, id=query.id, error="overloaded")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        pending = _Pending(query, future, time.perf_counter())
        self._queue.put_nowait(pending)
        self.metrics.observe_queue_depth(self._queue.qsize())
        if self._batcher is None:
            await self.start()
        return await future

    def stats_reply(self) -> QueryReply:
        """Reply payload for the ``stats`` op."""
        return QueryReply(ok=True, extra={"stats": self.metrics.snapshot()})

    # ------------------------------------------------------------------ #
    # the batch loop
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.max_batch and not self._queue.empty():
                batch.append(self._queue.get_nowait())
            try:
                await loop.run_in_executor(self._executor, self._run_batch, batch)
            except Exception as exc:  # pragma: no cover - worker-crash guard
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_result(
                            QueryReply(
                                ok=False, id=pending.query.id, error=str(exc)
                            )
                        )

    def _run_batch(self, batch: list[_Pending]) -> None:
        """Worker-thread body: one traversal, one reply per query."""
        loop = batch[0].future.get_loop()
        sources = [p.query.source for p in batch]
        targets = [p.query.target for p in batch]
        try:
            if len(batch) == 1:
                result = self.session.bfs(sources[0], target=targets[0])
                views = [result.query_view()]
                simulated = result.elapsed
            else:
                ms = self.session.bfs_many(sources, targets=targets)
                views = [ms.query_view(i) for i in range(len(batch))]
                simulated = ms.elapsed
        except ReproError as exc:
            self.metrics.failed += len(batch)
            for pending in batch:
                loop.call_soon_threadsafe(
                    self._resolve,
                    pending,
                    QueryReply(ok=False, id=pending.query.id, error=str(exc)),
                    None,
                )
            return
        self.metrics.observe_batch(len(batch), simulated)
        now = time.perf_counter()
        for pending, view in zip(batch, views):
            reply = QueryReply(ok=True, id=pending.query.id, result=view.to_dict())
            loop.call_soon_threadsafe(
                self._resolve, pending, reply, now - pending.enqueued_at
            )

    def _resolve(
        self, pending: _Pending, reply: QueryReply, wall: float | None
    ) -> None:
        if wall is not None:
            self.metrics.observe_reply(wall)
        if not pending.future.done():
            pending.future.set_result(reply)


class QueryClient:
    """In-process client: the service API without a socket."""

    def __init__(self, service: BfsService) -> None:
        self.service = service
        self._next_id = 0

    async def query(self, source: int, target: int | None = None) -> QueryReply:
        """Submit one query and await its reply."""
        self._next_id += 1
        return await self.service.submit(
            Query(source=source, target=target, id=self._next_id)
        )

    async def query_many(
        self, sources: list[int], targets: list[int | None] | None = None
    ) -> list[QueryReply]:
        """Submit ``sources`` concurrently; replies in submission order."""
        if targets is None:
            targets = [None] * len(sources)
        return list(
            await asyncio.gather(
                *(self.query(s, t) for s, t in zip(sources, targets))
            )
        )


# ---------------------------------------------------------------------- #
# TCP transport
# ---------------------------------------------------------------------- #
async def _handle_connection(
    service: BfsService, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8").strip()
            if not text:
                continue
            try:
                request = decode_request(text)
            except ProtocolError as exc:
                reply = QueryReply(ok=False, error=str(exc))
            else:
                if request["op"] == "ping":
                    reply = QueryReply(ok=True, extra={"pong": True})
                elif request["op"] == "stats":
                    reply = service.stats_reply()
                else:
                    reply = await service.submit(
                        Query(
                            source=request["source"],
                            target=request.get("target"),
                            id=request.get("id"),
                        )
                    )
            writer.write((reply.to_json() + "\n").encode("utf-8"))
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def serve_tcp(
    service: BfsService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Bind a JSON-lines TCP server over ``service`` (port 0 = ephemeral).

    The caller owns both lifetimes: ``server.close()`` +
    ``await server.wait_closed()``, then ``await service.close()``.
    """
    await service.start()
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )


class TcpQueryClient:
    """JSON-lines client for a :func:`serve_tcp` server.

    One connection, pipelined request/reply in order — call
    :meth:`query` concurrently from multiple tasks and the internal lock
    keeps lines paired.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()
        self._next_id = 0

    async def connect(self) -> "TcpQueryClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "TcpQueryClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _round_trip(self, line: str) -> QueryReply:
        if self._writer is None or self._reader is None:
            raise ReproError("client is not connected")
        async with self._lock:
            self._writer.write((line + "\n").encode("utf-8"))
            await self._writer.drain()
            raw = await self._reader.readline()
        if not raw:
            raise ReproError("server closed the connection")
        return QueryReply.from_json(raw.decode("utf-8"))

    async def query(self, source: int, target: int | None = None) -> QueryReply:
        """Submit one query over the socket and await its reply."""
        self._next_id += 1
        return await self._round_trip(
            Query(source=source, target=target, id=self._next_id).to_json()
        )

    async def ping(self) -> QueryReply:
        """Liveness probe."""
        return await self._round_trip('{"op": "ping"}')

    async def stats(self) -> QueryReply:
        """Fetch the server's metrics snapshot."""
        return await self._round_trip('{"op": "stats"}')
