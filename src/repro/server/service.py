"""The asyncio session service: admit, batch, traverse, reply.

:class:`BfsService` fronts one :class:`~repro.session.BfsSession`.  The
partitioned graph, torus mapping, and engine caches are built once (by
the session); queries stream in and are answered from that shared state.
The service's job is the serving-side machinery:

* **Admission control** — a bounded queue; a query arriving with
  ``max_queue`` already waiting is rejected immediately with an
  ``"overloaded"`` reply instead of growing the backlog without bound.
* **Batching** — a drain loop collects every query waiting when the
  worker goes idle (up to ``max_batch``, at most 64 — one mask bit per
  source) and runs them as *one* MS-BFS traversal.  Under load, batches
  grow naturally: the deeper the queue, the more queries each traversal
  amortizes.  A single-entry batch degrades to a plain sequential query.
  Fault schedules batch too: MS-BFS checkpoints and replays levels, so a
  faulted session no longer falls back to sequential serving.
* **Fault retry** — a traversal that dies with
  :class:`~repro.errors.FaultError` (replay budget exhausted) is retried
  up to ``fault_retries`` times with exponential backoff, each attempt
  under a *fresh* fault seed — replaying the spec's own seed would lose
  the identical chunks again.  A batch that still fails is answered with
  the structured ``"fault"`` error payload (code + report counters).
* **Deadlines** — a query may carry ``deadline_ms`` (or inherit
  ``default_deadline``); when it expires before a traversal answers it,
  the waiter gets a ``"deadline"`` failure and the query is dropped from
  any batch it has not yet ridden in.
* **Drain** — :meth:`close` finishes the queued and in-flight work
  before shutting the worker down (``drain=False`` for the old abrupt
  behaviour); readiness is exposed via :meth:`health_reply`.
* **Serialization** — traversals mutate the session's re-entrant engine,
  so they all run on one worker thread; concurrency lives in the asyncio
  front end, not in the traversal.
* **Metrics** — queue depth, batch sizes, per-query wall latency, served
  and rejected counts, fault retries/failures, deadline expiries,
  exported through :class:`~repro.observability.metrics.MetricsRegistry`.

Two clients are provided: :class:`QueryClient` calls the service
in-process (the loadgen's default), and :class:`TcpQueryClient` speaks
the JSON-lines protocol over a socket to a :func:`serve_tcp` server.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field

from repro.bfs.msbfs import MAX_BATCH
from repro.errors import FaultError, ReproError
from repro.observability.metrics import MetricsRegistry
from repro.server.protocol import ProtocolError, Query, QueryReply, decode_request
from repro.session import BfsSession

__all__ = ["BfsService", "QueryClient", "ServerMetrics", "TcpQueryClient", "serve_tcp"]


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass(slots=True)
class ServerMetrics:
    """Counters and latency samples for one service lifetime."""

    served: int = 0
    rejected: int = 0
    failed: int = 0
    batches: int = 0
    batched_queries: int = 0
    max_queue_depth: int = 0
    #: traversal re-runs after a FaultError (one per retried attempt)
    fault_retries: int = 0
    #: queries failed with the structured "fault" error payload
    fault_failures: int = 0
    #: queries expired by their deadline before a traversal answered them
    deadline_exceeded: int = 0
    #: per-query wall latency (seconds, submit -> reply)
    wall_latencies: list[float] = field(default_factory=list)
    #: simulated seconds per traversal
    simulated_seconds: float = 0.0

    def observe_queue_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def observe_batch(self, size: int, simulated: float) -> None:
        self.batches += 1
        self.batched_queries += size
        self.simulated_seconds += simulated

    def observe_reply(self, wall_seconds: float) -> None:
        self.served += 1
        self.wall_latencies.append(wall_seconds)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_queries / self.batches if self.batches else 0.0

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view (the ``stats`` op's reply payload)."""
        return {
            "served": self.served,
            "rejected": self.rejected,
            "failed": self.failed,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "max_queue_depth": self.max_queue_depth,
            "fault_retries": self.fault_retries,
            "fault_failures": self.fault_failures,
            "deadline_exceeded": self.deadline_exceeded,
            "wall_p50_ms": round(_percentile(self.wall_latencies, 0.50) * 1e3, 3),
            "wall_p99_ms": round(_percentile(self.wall_latencies, 0.99) * 1e3, 3),
            "simulated_seconds": self.simulated_seconds,
        }

    def registry(self) -> MetricsRegistry:
        """The snapshot as ``server_*`` samples in the unified schema."""
        reg = MetricsRegistry()
        reg.record("server_queries_total", self.served, outcome="served")
        reg.record("server_queries_total", self.rejected, outcome="rejected")
        reg.record("server_queries_total", self.failed, outcome="failed")
        reg.record("server_batches_total", self.batches)
        reg.record("server_batch_size_mean", self.mean_batch_size)
        reg.record("server_queue_depth_max", self.max_queue_depth)
        reg.record("server_fault_retries_total", self.fault_retries)
        reg.record("server_fault_failures_total", self.fault_failures)
        reg.record("server_deadline_exceeded_total", self.deadline_exceeded)
        reg.record(
            "server_latency_seconds", _percentile(self.wall_latencies, 0.50), q="0.50"
        )
        reg.record(
            "server_latency_seconds", _percentile(self.wall_latencies, 0.99), q="0.99"
        )
        reg.record("server_simulated_seconds_total", self.simulated_seconds)
        return reg


@dataclass(slots=True)
class _Pending:
    query: Query
    future: asyncio.Future
    enqueued_at: float
    #: armed deadline timer (None when the query has no deadline)
    deadline_handle: asyncio.TimerHandle | None = None


class BfsService:
    """Batching asyncio front end over one :class:`BfsSession`.

    ``max_batch`` caps sources per traversal (at most 64); ``max_queue``
    is the admission bound; ``batching=False`` pins every traversal to a
    single source (the sequential-dispatch mode the load generator
    compares against).  Fault schedules compose with batching — MS-BFS
    checkpoints and replays faulted levels — so a faulted session serves
    at full batch width.  ``default_deadline`` (seconds) bounds every
    query that does not carry its own ``deadline_ms``; ``fault_retries``
    and ``retry_backoff`` govern the re-run policy when a traversal
    exhausts its replay budget.
    """

    def __init__(
        self,
        session: BfsSession,
        *,
        max_batch: int = MAX_BATCH,
        max_queue: int = 1024,
        batching: bool = True,
        default_deadline: float | None = None,
        fault_retries: int = 2,
        retry_backoff: float = 0.02,
    ) -> None:
        if not (1 <= max_batch <= MAX_BATCH):
            raise ReproError(
                f"max_batch must be in [1, {MAX_BATCH}], got {max_batch}"
            )
        if fault_retries < 0:
            raise ReproError(f"fault_retries must be >= 0, got {fault_retries}")
        self.session = session
        self.max_batch = max_batch if batching else 1
        self.max_queue = max_queue
        self.default_deadline = default_deadline
        self.fault_retries = fault_retries
        self.retry_backoff = retry_backoff
        self.metrics = ServerMetrics()
        self._queue: asyncio.Queue[_Pending] = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="bfs-worker"
        )
        self._batcher: asyncio.Task | None = None
        self._closed = False
        self._draining = False
        self._in_flight = 0
        #: monotone reseed counter shared by all fault retries (each retry
        #: must draw a fresh loss pattern; see BfsSession._new_comm)
        self._retry_seq = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """``"ok"``, ``"draining"``, or ``"closed"``."""
        if self._closed:
            return "closed"
        if self._draining:
            return "draining"
        return "ok"

    async def start(self) -> "BfsService":
        """Start the batch loop; idempotent."""
        if self._batcher is None:
            self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())
        return self

    async def close(self, drain: bool = True) -> None:
        """Shut the service down.

        With ``drain=True`` (the default) new queries are refused but
        everything already admitted — queued *and* in-flight — completes
        and is answered before the worker stops.  ``drain=False`` is the
        abrupt path: queued queries are failed with ``"server closed"``.
        """
        if self._closed:
            return
        self._draining = True
        if drain and self._batcher is not None:
            await self._queue.join()
        self._closed = True
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        while not self._queue.empty():
            pending = self._queue.get_nowait()
            self._queue.task_done()
            self._resolve(
                pending,
                QueryReply(
                    ok=False, id=pending.query.id,
                    error="server closed", error_code="closed",
                ),
                None,
            )
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "BfsService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def submit(self, query: Query) -> QueryReply:
        """Admit ``query`` and await its reply.

        Rejects immediately (``"overloaded"``) when ``max_queue`` queries
        are already waiting — the backlog never grows without bound —
        and refuses outright while draining or closed.
        """
        if self._closed:
            return QueryReply(
                ok=False, id=query.id, error="server closed", error_code="closed"
            )
        if self._draining:
            return QueryReply(
                ok=False, id=query.id, error="server draining", error_code="closed"
            )
        n = self.session.graph.n
        for label, vertex in (("source", query.source), ("target", query.target)):
            if vertex is not None and not (0 <= vertex < n):
                # reject up front: one bad vertex must not fail the whole
                # batch it would have ridden in
                return QueryReply(
                    ok=False, id=query.id,
                    error=f"{label} {vertex} out of range [0, {n})",
                    error_code="bad_request",
                )
        if self._queue.qsize() >= self.max_queue:
            self.metrics.rejected += 1
            return QueryReply(
                ok=False, id=query.id, error="overloaded", error_code="overloaded"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        pending = _Pending(query, future, time.perf_counter())
        deadline = (
            query.deadline_ms / 1e3
            if query.deadline_ms is not None
            else self.default_deadline
        )
        if deadline is not None:
            pending.deadline_handle = loop.call_later(
                deadline, self._expire, pending
            )
        self._queue.put_nowait(pending)
        self.metrics.observe_queue_depth(self._queue.qsize())
        if self._batcher is None:
            await self.start()
        return await future

    def _expire(self, pending: _Pending) -> None:
        """Deadline timer body: fail the waiter if nothing answered yet."""
        pending.deadline_handle = None
        if not pending.future.done():
            self.metrics.deadline_exceeded += 1
            pending.future.set_result(
                QueryReply(
                    ok=False, id=pending.query.id,
                    error="deadline exceeded", error_code="deadline",
                )
            )

    def stats_reply(self) -> QueryReply:
        """Reply payload for the ``stats`` op."""
        return QueryReply(ok=True, extra={"stats": self.metrics.snapshot()})

    def health_reply(self) -> QueryReply:
        """Reply payload for the ``health`` op (readiness probe)."""
        return QueryReply(
            ok=True,
            extra={
                "health": {
                    "state": self.state,
                    "ready": self.state == "ok",
                    "queue_depth": self._queue.qsize(),
                    "in_flight": self._in_flight,
                    "max_batch": self.max_batch,
                    "faulted": self.session.system.faults is not None,
                }
            },
        )

    # ------------------------------------------------------------------ #
    # the batch loop
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.max_batch and not self._queue.empty():
                batch.append(self._queue.get_nowait())
            # deadline-expired (or otherwise answered) queries must not
            # ride in the traversal they no longer await
            live = [p for p in batch if not p.future.done()]
            try:
                if live:
                    self._in_flight = len(live)
                    await loop.run_in_executor(self._executor, self._run_batch, live)
            except Exception as exc:  # pragma: no cover - worker-crash guard
                for pending in live:
                    if not pending.future.done():
                        pending.future.set_result(
                            QueryReply(
                                ok=False, id=pending.query.id,
                                error=str(exc), error_code="internal",
                            )
                        )
            finally:
                self._in_flight = 0
                for _ in batch:
                    self._queue.task_done()

    def _run_batch(self, batch: list[_Pending]) -> None:
        """Worker-thread body: one traversal (with fault retries), one
        reply per query."""
        loop = batch[0].future.get_loop()
        sources = [p.query.source for p in batch]
        targets = [p.query.target for p in batch]
        spec = self.session.system.faults
        attempts = 1 + (self.fault_retries if spec is not None else 0)
        last_fault: FaultError | None = None
        for attempt in range(attempts):
            if all(p.future.done() for p in batch):
                return  # every rider expired while we were retrying
            fault_seed = None
            if attempt > 0:
                # fresh seed per retry: the spec's own seed would replay
                # the identical loss pattern and fail the same way
                self._retry_seq += 1
                fault_seed = spec.seed + 7919 * self._retry_seq
                self.metrics.fault_retries += 1
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            try:
                if len(batch) == 1:
                    result = self.session.bfs(
                        sources[0], target=targets[0], fault_seed=fault_seed
                    )
                    views = [result.query_view()]
                    simulated = result.elapsed
                else:
                    ms = self.session.bfs_many(
                        sources, targets=targets, fault_seed=fault_seed
                    )
                    views = [ms.query_view(i) for i in range(len(batch))]
                    simulated = ms.elapsed
                break
            except FaultError as exc:
                last_fault = exc
                continue
            except ReproError as exc:
                self.metrics.failed += len(batch)
                for pending in batch:
                    loop.call_soon_threadsafe(
                        self._resolve,
                        pending,
                        QueryReply(
                            ok=False, id=pending.query.id,
                            error=str(exc), error_code="internal",
                        ),
                        None,
                    )
                return
        else:
            # retries exhausted: structured fault payload, not an opaque
            # string — clients see what the fault layer observed
            self.metrics.failed += len(batch)
            self.metrics.fault_failures += len(batch)
            counters = _fault_payload(last_fault)
            for pending in batch:
                loop.call_soon_threadsafe(
                    self._resolve,
                    pending,
                    QueryReply(
                        ok=False, id=pending.query.id,
                        error=str(last_fault), error_code="fault",
                        extra={"fault": counters} if counters else {},
                    ),
                    None,
                )
            return
        self.metrics.observe_batch(len(batch), simulated)
        now = time.perf_counter()
        for pending, view in zip(batch, views):
            reply = QueryReply(ok=True, id=pending.query.id, result=view.to_dict())
            loop.call_soon_threadsafe(
                self._resolve, pending, reply, now - pending.enqueued_at
            )

    def _resolve(
        self, pending: _Pending, reply: QueryReply, wall: float | None
    ) -> None:
        if pending.deadline_handle is not None:
            pending.deadline_handle.cancel()
            pending.deadline_handle = None
        if pending.future.done():
            return  # the deadline answered first; drop the late reply
        if wall is not None:
            self.metrics.observe_reply(wall)
        pending.future.set_result(reply)


def _fault_payload(exc: FaultError | None) -> dict:
    """The fault-report counters of ``exc`` as a JSON-safe dict."""
    if exc is None or getattr(exc, "report", None) is None:
        return {}
    payload = asdict(exc.report)
    if payload.get("link_down") is not None:
        payload["link_down"] = list(payload["link_down"])
    return payload


class QueryClient:
    """In-process client: the service API without a socket."""

    def __init__(self, service: BfsService) -> None:
        self.service = service
        self._next_id = 0

    async def query(
        self,
        source: int,
        target: int | None = None,
        deadline_ms: float | None = None,
    ) -> QueryReply:
        """Submit one query and await its reply."""
        self._next_id += 1
        return await self.service.submit(
            Query(
                source=source, target=target, id=self._next_id,
                deadline_ms=deadline_ms,
            )
        )

    async def query_many(
        self, sources: list[int], targets: list[int | None] | None = None
    ) -> list[QueryReply]:
        """Submit ``sources`` concurrently; replies in submission order."""
        if targets is None:
            targets = [None] * len(sources)
        return list(
            await asyncio.gather(
                *(self.query(s, t) for s, t in zip(sources, targets))
            )
        )


# ---------------------------------------------------------------------- #
# TCP transport
# ---------------------------------------------------------------------- #
async def _handle_connection(
    service: BfsService, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """One client connection: decode lines, dispatch, reply.

    Hardened against hostile or broken clients: malformed JSON and
    unknown ops get error replies; an oversized line (beyond the stream
    reader's buffer limit) gets an error reply and the connection is
    dropped; a mid-query disconnect just ends the handler — none of
    these can take the server down.
    """
    try:
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # the line overran the StreamReader limit; the rest of
                # the buffer is unframed garbage, so answer and hang up
                reply = QueryReply(
                    ok=False, error="request line too long", error_code="protocol"
                )
                writer.write((reply.to_json() + "\n").encode("utf-8"))
                await writer.drain()
                break
            except (ConnectionError, OSError):  # pragma: no cover - abrupt reset
                break
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                request = decode_request(text)
            except ProtocolError as exc:
                reply = QueryReply(ok=False, error=str(exc), error_code="protocol")
            else:
                if request["op"] == "ping":
                    reply = QueryReply(ok=True, extra={"pong": True})
                elif request["op"] == "stats":
                    reply = service.stats_reply()
                elif request["op"] == "health":
                    reply = service.health_reply()
                else:
                    reply = await service.submit(
                        Query(
                            source=request["source"],
                            target=request.get("target"),
                            id=request.get("id"),
                            deadline_ms=request.get("deadline_ms"),
                        )
                    )
            try:
                writer.write((reply.to_json() + "\n").encode("utf-8"))
                await writer.drain()
            except (ConnectionError, OSError):
                break  # client went away mid-reply; nothing left to do
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def serve_tcp(
    service: BfsService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Bind a JSON-lines TCP server over ``service`` (port 0 = ephemeral).

    The caller owns both lifetimes: ``server.close()`` +
    ``await server.wait_closed()``, then ``await service.close()``.
    """
    await service.start()
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )


class TcpQueryClient:
    """JSON-lines client for a :func:`serve_tcp` server.

    One connection, pipelined request/reply in order — call
    :meth:`query` concurrently from multiple tasks and the internal lock
    keeps lines paired.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()
        self._next_id = 0

    async def connect(self) -> "TcpQueryClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "TcpQueryClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _round_trip(self, line: str) -> QueryReply:
        if self._writer is None or self._reader is None:
            raise ReproError("client is not connected")
        async with self._lock:
            self._writer.write((line + "\n").encode("utf-8"))
            await self._writer.drain()
            raw = await self._reader.readline()
        if not raw:
            raise ReproError("server closed the connection")
        return QueryReply.from_json(raw.decode("utf-8"))

    async def query(
        self,
        source: int,
        target: int | None = None,
        deadline_ms: float | None = None,
    ) -> QueryReply:
        """Submit one query over the socket and await its reply."""
        self._next_id += 1
        return await self._round_trip(
            Query(
                source=source, target=target, id=self._next_id,
                deadline_ms=deadline_ms,
            ).to_json()
        )

    async def ping(self) -> QueryReply:
        """Liveness probe."""
        return await self._round_trip('{"op": "ping"}')

    async def stats(self) -> QueryReply:
        """Fetch the server's metrics snapshot."""
        return await self._round_trip('{"op": "stats"}')

    async def health(self) -> QueryReply:
        """Fetch the server's readiness state."""
        return await self._round_trip('{"op": "health"}')
