"""JSON-lines wire protocol for the BFS session server.

One request per line, one reply per line, UTF-8, newline-terminated.
Requests are objects with an ``op`` field:

``{"op": "query", "source": 17, "target": 42, "id": 7, "deadline_ms": 500}``
    A BFS query.  ``target`` is optional (full traversal when absent);
    ``id`` is an optional client correlation token echoed in the reply;
    ``deadline_ms`` is an optional per-query latency budget — a query
    still unanswered when it expires is failed with error code
    ``"deadline"`` instead of occupying the worker forever.

``{"op": "stats"}``
    A snapshot of the server's admission/batching metrics.

``{"op": "health"}``
    Readiness probe: the service state (``"ok"``/``"draining"``/
    ``"closed"``), queue depth, and whether new queries are admitted.

``{"op": "ping"}``
    Liveness probe.

Replies mirror the request: ``{"ok": true, "id": 7, "result": {...}}``
where ``result`` is a :meth:`~repro.bfs.result.QueryResult.to_dict`
payload (scalars plus the level-array SHA-256 ``levels_digest`` — clients
verify batched answers against sequential ones by digest, never by
shipping O(n) level arrays).  Failures carry ``{"ok": false, "error":
"...", "error_code": "..."}`` — the ``error`` string is for humans, the
``error_code`` is the stable machine-readable discriminator
(``"overloaded"``, ``"closed"``, ``"bad_request"``, ``"deadline"``,
``"fault"``, ``"protocol"``, ``"internal"``).  A ``"fault"`` failure
additionally carries the fault-report counters under ``"fault"`` so
clients see *what* the fault layer observed (injected drops, rollbacks,
crashes) instead of an opaque string.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = ["ProtocolError", "Query", "QueryReply", "decode_request"]


class ProtocolError(ReproError):
    """A request line the server could not interpret."""


@dataclass(slots=True, frozen=True)
class Query:
    """One BFS query: a source, an optional target, a correlation id."""

    source: int
    target: int | None = None
    id: int | None = None
    #: per-query latency budget in milliseconds (None = server default)
    deadline_ms: float | None = None

    def to_json(self) -> str:
        """The request line (without trailing newline)."""
        payload: dict[str, object] = {"op": "query", "source": self.source}
        if self.target is not None:
            payload["target"] = self.target
        if self.id is not None:
            payload["id"] = self.id
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return json.dumps(payload)


@dataclass(slots=True, frozen=True)
class QueryReply:
    """One reply line: either a result payload or an error string."""

    ok: bool
    id: int | None = None
    result: dict | None = None
    error: str | None = None
    #: stable machine-readable failure discriminator (see module docstring)
    error_code: str | None = None
    extra: dict = field(default_factory=dict)

    @property
    def overloaded(self) -> bool:
        """Whether this reply is an admission-control rejection."""
        return not self.ok and (
            self.error_code == "overloaded" or self.error == "overloaded"
        )

    def to_json(self) -> str:
        """The reply line (without trailing newline)."""
        payload: dict[str, object] = {"ok": self.ok}
        if self.id is not None:
            payload["id"] = self.id
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        if self.error_code is not None:
            payload["error_code"] = self.error_code
        payload.update(self.extra)
        return json.dumps(payload)

    @classmethod
    def from_json(cls, line: str) -> "QueryReply":
        """Parse a reply line back into a :class:`QueryReply`."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"malformed reply line: {exc}") from exc
        if not isinstance(payload, dict) or "ok" not in payload:
            raise ProtocolError(f"reply is not an object with 'ok': {line!r}")
        known = {"ok", "id", "result", "error", "error_code"}
        return cls(
            ok=bool(payload["ok"]),
            id=payload.get("id"),
            result=payload.get("result"),
            error=payload.get("error"),
            error_code=payload.get("error_code"),
            extra={k: v for k, v in payload.items() if k not in known},
        )


def decode_request(line: str) -> dict:
    """Parse one request line; raises :class:`ProtocolError` on junk.

    Returns the request object with ``op`` validated and, for queries,
    ``source``/``target`` coerced to ``int``.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed request line: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"request is not an object: {line!r}")
    op = payload.get("op")
    if op not in ("query", "stats", "ping", "health"):
        raise ProtocolError(f"unknown op {op!r}")
    if op == "query":
        if "source" not in payload:
            raise ProtocolError("query without a source")
        try:
            payload["source"] = int(payload["source"])
            if payload.get("target") is not None:
                payload["target"] = int(payload["target"])
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"non-integer source/target: {exc}") from exc
        if payload.get("deadline_ms") is not None:
            try:
                payload["deadline_ms"] = float(payload["deadline_ms"])
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"non-numeric deadline_ms: {exc}") from exc
            if not payload["deadline_ms"] > 0:
                raise ProtocolError(
                    f"deadline_ms must be positive, got {payload['deadline_ms']}"
                )
    return payload
