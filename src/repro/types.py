"""Shared scalar types, array aliases, and small value objects.

The whole library stores vertex identifiers as 64-bit integers
(``VERTEX_DTYPE``) so that graphs with billions of vertices — the regime the
paper targets — are representable without overflow, and so that message
payloads are plain NumPy buffers (the mpi4py "fast path" idiom: communicate
buffer-like objects, not pickled Python objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TypeAlias

import numpy as np

#: dtype used for vertex identifiers everywhere (global and local indices).
VERTEX_DTYPE = np.int64

#: dtype used for level labels; -1 encodes "unvisited" (the paper's infinity).
LEVEL_DTYPE = np.int64

#: Sentinel level meaning "not yet reached" (the paper's ``L = infinity``).
UNREACHED: int = -1

#: Alias for a 1-D array of vertex ids.
VertexArray: TypeAlias = np.ndarray

#: Alias for a 1-D array of level labels.
LevelArray: TypeAlias = np.ndarray

#: Rank of a (virtual) processor in the runtime.
Rank: TypeAlias = int


def as_vertex_array(values) -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D ``VERTEX_DTYPE`` array.

    Accepts lists, ranges, scalars and arrays; always returns a fresh or
    already-conforming array (never a view with the wrong dtype).
    """
    arr = np.asarray(values, dtype=VERTEX_DTYPE)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"vertex arrays must be 1-D, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


@dataclass(frozen=True, slots=True)
class GridShape:
    """Shape ``R x C`` of the logical 2-D processor mesh.

    The paper arranges ``P = R * C`` processors in an ``R x C`` mesh; the
    conventional 1-D partitioning is the degenerate case ``R == 1`` or
    ``C == 1`` (Section 2.2).
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid shape must be positive, got {self.rows}x{self.cols}")

    @property
    def size(self) -> int:
        """Total number of processors ``P = R * C``."""
        return self.rows * self.cols

    @property
    def is_1d(self) -> bool:
        """True when the mesh degenerates to a conventional 1-D partitioning."""
        return self.rows == 1 or self.cols == 1

    def rank_of(self, row: int, col: int) -> int:
        """Linear rank of mesh position ``(row, col)`` (row-major)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row},{col}) outside {self.rows}x{self.cols} mesh")
        return row * self.cols + col

    def coords_of(self, rank: int) -> tuple[int, int]:
        """Mesh position ``(row, col)`` of linear ``rank``."""
        if not (0 <= rank < self.size):
            raise IndexError(f"rank {rank} outside mesh of size {self.size}")
        return divmod(rank, self.cols)

    def row_members(self, row: int) -> list[int]:
        """Ranks in processor-row ``row`` (the fold communicator, Section 2.2)."""
        return [self.rank_of(row, c) for c in range(self.cols)]

    def col_members(self, col: int) -> list[int]:
        """Ranks in processor-column ``col`` (the expand communicator)."""
        return [self.rank_of(r, col) for r in range(self.rows)]


@dataclass(frozen=True, slots=True)
class GraphSpec:
    """Specification of a Poisson random graph experiment instance.

    ``n`` is the global vertex count and ``k`` the average degree (the
    paper's notation throughout).  ``seed`` pins the instance.
    """

    n: int
    k: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"graph must have at least one vertex, got n={self.n}")
        if self.k < 0:
            raise ValueError(f"average degree must be non-negative, got k={self.k}")
        if self.k > self.n - 1 and self.n > 1:
            raise ValueError(f"average degree k={self.k} exceeds n-1={self.n - 1}")

    @property
    def expected_edges(self) -> float:
        """Expected number of undirected edges, ``n * k / 2``."""
        return self.n * self.k / 2.0
