"""Shared scalar types, array aliases, and small value objects.

The whole library stores vertex identifiers as 64-bit integers
(``VERTEX_DTYPE``) so that graphs with billions of vertices — the regime the
paper targets — are representable without overflow, and so that message
payloads are plain NumPy buffers (the mpi4py "fast path" idiom: communicate
buffer-like objects, not pickled Python objects).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, TypeAlias

import numpy as np

from repro.errors import ConfigurationError
from repro.faults import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.machine.bluegene import MachineModel
    from repro.machine.mapping import TaskMapping

#: dtype used for vertex identifiers everywhere (global and local indices).
VERTEX_DTYPE = np.int64

#: dtype used for level labels; -1 encodes "unvisited" (the paper's infinity).
LEVEL_DTYPE = np.int64

#: Sentinel level meaning "not yet reached" (the paper's ``L = infinity``).
UNREACHED: int = -1

#: Alias for a 1-D array of vertex ids.
VertexArray: TypeAlias = np.ndarray

#: Alias for a 1-D array of level labels.
LevelArray: TypeAlias = np.ndarray

#: Rank of a (virtual) processor in the runtime.
Rank: TypeAlias = int


def as_vertex_array(values) -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D ``VERTEX_DTYPE`` array.

    Accepts lists, ranges, scalars and arrays; always returns a fresh or
    already-conforming array (never a view with the wrong dtype).
    """
    arr = np.asarray(values, dtype=VERTEX_DTYPE)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"vertex arrays must be 1-D, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


@dataclass(frozen=True, slots=True)
class GridShape:
    """Shape ``R x C`` of the logical 2-D processor mesh.

    The paper arranges ``P = R * C`` processors in an ``R x C`` mesh; the
    conventional 1-D partitioning is the degenerate case ``R == 1`` or
    ``C == 1`` (Section 2.2).
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid shape must be positive, got {self.rows}x{self.cols}")

    @property
    def size(self) -> int:
        """Total number of processors ``P = R * C``."""
        return self.rows * self.cols

    @property
    def is_1d(self) -> bool:
        """True when the mesh degenerates to a conventional 1-D partitioning."""
        return self.rows == 1 or self.cols == 1

    def rank_of(self, row: int, col: int) -> int:
        """Linear rank of mesh position ``(row, col)`` (row-major)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row},{col}) outside {self.rows}x{self.cols} mesh")
        return row * self.cols + col

    def coords_of(self, rank: int) -> tuple[int, int]:
        """Mesh position ``(row, col)`` of linear ``rank``."""
        if not (0 <= rank < self.size):
            raise IndexError(f"rank {rank} outside mesh of size {self.size}")
        return divmod(rank, self.cols)

    def row_members(self, row: int) -> list[int]:
        """Ranks in processor-row ``row`` (the fold communicator, Section 2.2)."""
        return [self.rank_of(row, c) for c in range(self.cols)]

    def col_members(self, col: int) -> list[int]:
        """Ranks in processor-column ``col`` (the expand communicator)."""
        return [self.rank_of(r, col) for r in range(self.rows)]


_KNOWN_MACHINES = frozenset({"bluegene", "mcr"})
_KNOWN_MAPPINGS = frozenset({"planar", "row-major"})
_KNOWN_LAYOUTS = frozenset({"1d", "2d"})
#: wire-codec preset names (see ``repro.wire``); kept as a literal set so
#: this module stays import-cycle-free (``repro.wire`` imports it).
_KNOWN_WIRES = frozenset({"raw", "delta-varint", "bitmap", "adaptive"})
#: observability preset names (see ``repro.observability``); literal for the
#: same import-cycle reason as ``_KNOWN_WIRES``.
_KNOWN_OBSERVE = frozenset({"off", "spans", "messages", "full"})


@dataclass(frozen=True, slots=True)
class SystemSpec:
    """The simulated system a search runs on, as one value object.

    Bundles the axes that used to travel as separate
    ``machine=``/``mapping=``/``layout=`` (and fault) keyword arguments
    through every entry point: the machine cost model, the task mapping
    onto the physical topology, the partition layout, the wire codec
    compressing frontier messages (``repro.wire``), and the optional
    fault-injection workload.  Pass it as ``system=SystemSpec(...)`` — or
    as a preset name such as ``"bluegene-2d"`` — to
    :func:`repro.api.build_communicator`, :func:`repro.api.build_engine`,
    :func:`repro.api.distributed_bfs`, :func:`repro.api.bidirectional_bfs`,
    and :class:`repro.session.BfsSession`.  The old keyword arguments
    remain accepted everywhere and act as overrides on top of the spec
    (see :func:`resolve_system`, the single shared resolver).
    """

    #: ``"bluegene"``, ``"mcr"``, or a custom :class:`MachineModel`
    machine: str | MachineModel = "bluegene"
    #: ``"planar"`` (Figure 1), ``"row-major"``, or a prebuilt :class:`TaskMapping`
    mapping: str | TaskMapping = "planar"
    #: ``"2d"`` (Algorithm 2) or ``"1d"`` (Algorithm 1)
    layout: str = "2d"
    #: frontier compression codec on the wire (``repro.wire``): ``"raw"``,
    #: ``"delta-varint"``, ``"bitmap"``, ``"adaptive"``, or a ``WireCodec``
    wire: str | Any = "raw"
    #: optional fault-injection workload (``repro.faults``): a
    #: :class:`FaultSpec`, a preset name (``"none"``, ``"mild"``,
    #: ``"harsh"``), or a ``key=value,...`` string for
    #: :meth:`FaultSpec.parse`
    faults: FaultSpec | str | None = None
    #: observability capture (``repro.observability``): ``"off"`` (default),
    #: ``"spans"``, ``"messages"``, ``"full"``, or an ``ObserveSpec``
    observe: str | Any = "off"
    #: communication sieve (``repro.bfs.sieve``): filter fold candidates
    #: against a sender-side shadow of each destination's visited set so
    #: already-visited vertices never hit the wire; requires the
    #: union-ring fold and no fault injection
    sieve: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.machine, str) and self.machine not in _KNOWN_MACHINES:
            raise ConfigurationError(
                f"unknown machine {self.machine!r}; use one of "
                f"{sorted(_KNOWN_MACHINES)} or a MachineModel"
            )
        if isinstance(self.mapping, str) and self.mapping not in _KNOWN_MAPPINGS:
            raise ConfigurationError(
                f"unknown mapping {self.mapping!r}; use one of "
                f"{sorted(_KNOWN_MAPPINGS)} or a TaskMapping"
            )
        if self.layout not in _KNOWN_LAYOUTS:
            raise ConfigurationError(
                f"unknown layout {self.layout!r}; use one of {sorted(_KNOWN_LAYOUTS)}"
            )
        if isinstance(self.wire, str):
            if self.wire not in _KNOWN_WIRES:
                raise ConfigurationError(
                    f"unknown wire codec {self.wire!r}; use one of "
                    f"{sorted(_KNOWN_WIRES)} or a WireCodec"
                )
        elif not (callable(getattr(self.wire, "encode", None))
                  and callable(getattr(self.wire, "decode", None))):
            raise ConfigurationError(
                f"wire must be a codec name or a WireCodec, "
                f"got {type(self.wire).__name__}"
            )
        if isinstance(self.observe, str):
            if self.observe not in _KNOWN_OBSERVE:
                raise ConfigurationError(
                    f"unknown observe preset {self.observe!r}; use one of "
                    f"{sorted(_KNOWN_OBSERVE)} or an ObserveSpec"
                )
        elif not (
            isinstance(getattr(self.observe, "spans", None), bool)
            and isinstance(getattr(self.observe, "messages", None), bool)
        ):
            raise ConfigurationError(
                f"observe must be a preset name or an ObserveSpec, "
                f"got {type(self.observe).__name__}"
            )
        if not isinstance(self.sieve, bool):
            raise ConfigurationError(
                f"sieve must be a bool, got {type(self.sieve).__name__}"
            )
        if isinstance(self.faults, str):
            # preset name ("none", "mild", "harsh") or a key=value,...
            # string; frozen dataclass, so assign via object.__setattr__
            object.__setattr__(self, "faults", FaultSpec.parse(self.faults))
        elif self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise ConfigurationError(
                f"faults must be a FaultSpec, a preset name, or None, "
                f"got {type(self.faults).__name__}"
            )


#: Named system configurations accepted wherever ``system=`` is.
SYSTEM_PRESETS: dict[str, SystemSpec] = {
    "bluegene-2d": SystemSpec(),
    "bluegene-1d": SystemSpec(layout="1d"),
    "bluegene-row-major": SystemSpec(mapping="row-major"),
    "mcr-2d": SystemSpec(machine="mcr"),
    "mcr-1d": SystemSpec(machine="mcr", layout="1d"),
    "bluegene-2d-varint": SystemSpec(wire="delta-varint"),
    "bluegene-2d-bitmap": SystemSpec(wire="bitmap"),
    "bluegene-2d-adaptive": SystemSpec(wire="adaptive"),
    "bluegene-2d-observed": SystemSpec(observe="full"),
    "bluegene-2d-sieve": SystemSpec(sieve=True),
}


def resolve_system(
    system: SystemSpec | str | None = None,
    *,
    machine: str | Any | None = None,
    mapping: str | Any | None = None,
    layout: str | None = None,
    wire: str | Any | None = None,
    faults: FaultSpec | str | None = None,
    observe: str | Any | None = None,
    sieve: bool | None = None,
) -> SystemSpec:
    """The single shared resolver behind every ``system=`` entry point.

    ``system`` may be a :class:`SystemSpec`, a preset name from
    :data:`SYSTEM_PRESETS`, or ``None`` (the default system).  The legacy
    keyword arguments — the compatibility path for the pre-``SystemSpec``
    API — are applied on top of it, so an explicit ``machine=``/
    ``mapping=``/``layout=``/``faults=`` always wins over the spec.
    """
    if system is None:
        base = SystemSpec()
    elif isinstance(system, str):
        try:
            base = SYSTEM_PRESETS[system]
        except KeyError:
            raise ConfigurationError(
                f"unknown system preset {system!r}; choose from "
                f"{sorted(SYSTEM_PRESETS)} or pass a SystemSpec"
            ) from None
    elif isinstance(system, SystemSpec):
        base = system
    else:
        raise ConfigurationError(
            f"system must be a SystemSpec, a preset name, or None, "
            f"got {type(system).__name__}"
        )
    overrides = {
        key: value
        for key, value in (
            ("machine", machine), ("mapping", mapping),
            ("layout", layout), ("wire", wire), ("faults", faults),
            ("observe", observe), ("sieve", sieve),
        )
        if value is not None
    }
    return replace(base, **overrides) if overrides else base


#: graph-kind names accepted by :class:`GraphSpec` (``kind=``).
_KNOWN_GRAPH_KINDS = frozenset({"poisson", "rmat"})


@dataclass(frozen=True, slots=True)
class GraphSpec:
    """Specification of a random graph experiment instance.

    ``n`` is the global vertex count and ``k`` the average degree (the
    paper's notation throughout).  ``seed`` pins the instance.

    ``kind`` selects the generator family: ``"poisson"`` (the paper's
    Erdős–Rényi workload; the default) or ``"rmat"`` (Graph500-style
    scale-free Kronecker graphs, the successor literature's workload).
    R-MAT specs carry ``scale``/``edge_factor`` and the partition
    probabilities ``a``/``b``/``c`` (``d = 1 - a - b - c``); ``n`` must
    equal ``2**scale`` and ``k`` is the *nominal* average degree
    ``2 * edge_factor`` (duplicates and self-loops make the realised
    degree somewhat lower).  Use :meth:`GraphSpec.rmat` to build one
    without repeating the derived fields.
    """

    n: int
    k: float
    seed: int = 0
    #: generator family: ``"poisson"`` (default) or ``"rmat"``
    kind: str = "poisson"
    #: R-MAT only: ``n == 2**scale``
    scale: int | None = None
    #: R-MAT only: directed edges sampled per vertex (Graph500's 16)
    edge_factor: int = 16
    #: R-MAT quadrant probabilities (Graph500 defaults); d = 1 - a - b - c
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"graph must have at least one vertex, got n={self.n}")
        if self.k < 0:
            raise ValueError(f"average degree must be non-negative, got k={self.k}")
        if self.k > self.n - 1 and self.n > 1:
            raise ValueError(f"average degree k={self.k} exceeds n-1={self.n - 1}")
        if self.kind not in _KNOWN_GRAPH_KINDS:
            raise ValueError(
                f"unknown graph kind {self.kind!r}; "
                f"use one of {sorted(_KNOWN_GRAPH_KINDS)}"
            )
        if self.kind == "rmat":
            if self.scale is None:
                raise ValueError("kind='rmat' requires scale (n = 2**scale)")
            if self.scale < 1:
                raise ValueError(f"rmat scale must be >= 1, got {self.scale}")
            if self.n != (1 << self.scale):
                raise ValueError(
                    f"rmat requires n == 2**scale "
                    f"({1 << self.scale}), got n={self.n}"
                )
            if self.edge_factor < 1:
                raise ValueError(
                    f"rmat edge_factor must be >= 1, got {self.edge_factor}"
                )
            d = 1.0 - self.a - self.b - self.c
            if min(self.a, self.b, self.c, d) < 0:
                raise ValueError(
                    "R-MAT probabilities a, b, c (and d = 1-a-b-c) "
                    "must be non-negative"
                )
        elif self.scale is not None:
            raise ValueError("scale is only meaningful with kind='rmat'")

    @classmethod
    def rmat(
        cls,
        scale: int,
        *,
        edge_factor: int = 16,
        seed: int = 0,
        a: float = 0.57,
        b: float = 0.19,
        c: float = 0.19,
    ) -> "GraphSpec":
        """An R-MAT spec with the derived fields filled in.

        ``n = 2**scale`` and the nominal average degree is
        ``k = 2 * edge_factor`` (each of the ``n * edge_factor`` directed
        samples contributes two endpoint slots before dedup).
        """
        return cls(
            n=1 << scale,
            k=float(2 * edge_factor),
            seed=seed,
            kind="rmat",
            scale=scale,
            edge_factor=edge_factor,
            a=a,
            b=b,
            c=c,
        )

    @property
    def expected_edges(self) -> float:
        """Expected (poisson) or nominal pre-dedup (rmat) undirected edge count."""
        if self.kind == "rmat":
            return float(self.n * self.edge_factor)
        return self.n * self.k / 2.0
