"""``python -m repro`` dispatches to the CLI (same as the ``repro-bfs`` script)."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
