"""Edge-list persistence.

Two formats: a compact ``.npz`` (NumPy, preferred) and a plain-text
``u v``-per-line format for interoperability with external tools.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.csr import CsrGraph
from repro.types import VERTEX_DTYPE


def write_edge_list(graph: CsrGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path``; format chosen by extension (.npz or text)."""
    path = Path(path)
    edges = graph.edge_array()
    if path.suffix == ".npz":
        np.savez_compressed(path, n=np.int64(graph.n), edges=edges)
    else:
        with path.open("w", encoding="utf-8") as fh:
            fh.write(f"# n={graph.n} m={edges.shape[0]}\n")
            np.savetxt(fh, edges, fmt="%d")


def read_edge_list(path: str | Path) -> CsrGraph:
    """Read a graph previously written by :func:`write_edge_list`."""
    path = Path(path)
    if path.suffix == ".npz":
        data = np.load(path)
        return CsrGraph.from_edges(int(data["n"]), data["edges"])
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline()
        if not header.startswith("#"):
            raise ValueError(f"{path}: missing '# n=... m=...' header line")
        n = int(header.split("n=")[1].split()[0])
        m = int(header.split("m=")[1].split()[0])
        if m == 0:
            return CsrGraph.empty(n)
        edges = np.loadtxt(fh, dtype=VERTEX_DTYPE, ndmin=2)
    return CsrGraph.from_edges(n, edges)
