"""Diameter and eccentricity estimation.

The paper's weak-scaling argument (Section 4.2) rests on random-graph
diameters growing as O(log n) [Bollobás 1981]; these helpers let the tests
and benchmarks verify that property on generated instances.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CsrGraph
from repro.types import LEVEL_DTYPE, UNREACHED, VERTEX_DTYPE


def bfs_levels(graph: CsrGraph, source: int) -> np.ndarray:
    """Serial level array from ``source``; ``UNREACHED`` where disconnected.

    This is the library's validation oracle (see :mod:`repro.bfs.serial`
    for the public wrapper); kept here to avoid a circular import.
    """
    if not (0 <= source < graph.n):
        raise IndexError(f"source {source} out of range [0, {graph.n})")
    levels = np.full(graph.n, UNREACHED, dtype=LEVEL_DTYPE)
    levels[source] = 0
    frontier = np.array([source], dtype=VERTEX_DTYPE)
    depth = 0
    while frontier.size:
        neigh = graph.neighbors_of_set(frontier)
        if neigh.size == 0:
            break
        neigh = np.unique(neigh)
        fresh = neigh[levels[neigh] == UNREACHED]
        depth += 1
        levels[fresh] = depth
        frontier = fresh
    return levels


def eccentricity(graph: CsrGraph, source: int) -> int:
    """Largest finite BFS distance from ``source`` (0 for isolated vertices)."""
    levels = bfs_levels(graph, source)
    reached = levels[levels != UNREACHED]
    return int(reached.max()) if reached.size else 0


def double_sweep_lower_bound(graph: CsrGraph, start: int = 0) -> int:
    """Double-sweep diameter lower bound: BFS, then BFS from the farthest vertex."""
    if graph.n == 0:
        return 0
    levels = bfs_levels(graph, start)
    finite = np.where(levels != UNREACHED)[0]
    if finite.size == 0:
        return 0
    far = int(finite[np.argmax(levels[finite])])
    return eccentricity(graph, far)


def estimate_diameter(graph: CsrGraph, samples: int = 4, seed: int = 0) -> int:
    """Max double-sweep bound over ``samples`` random start vertices."""
    if graph.n == 0:
        return 0
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, graph.n, size=max(1, samples))
    return max(double_sweep_lower_bound(graph, int(s)) for s in starts)
