"""Graph substrate: generators, CSR storage, diameter estimation, I/O."""

from repro.graph.csr import CsrGraph
from repro.graph.generators import (
    build_graph,
    poisson_random_graph,
    gnp_edges,
    gnm_edges,
    rmat_edges,
    dedup_undirected_edges,
    lattice_edges,
    ring_edges,
)
from repro.graph.diameter import double_sweep_lower_bound, eccentricity, estimate_diameter
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.distributed_gen import DistributedGraphBuilder
from repro.graph.components import (
    connected_components,
    component_sizes,
    giant_component,
    sample_connected_pair,
    sample_unreachable_pair,
)

__all__ = [
    "CsrGraph",
    "build_graph",
    "poisson_random_graph",
    "gnp_edges",
    "gnm_edges",
    "rmat_edges",
    "dedup_undirected_edges",
    "lattice_edges",
    "ring_edges",
    "double_sweep_lower_bound",
    "eccentricity",
    "estimate_diameter",
    "read_edge_list",
    "write_edge_list",
    "DistributedGraphBuilder",
    "connected_components",
    "component_sizes",
    "giant_component",
    "sample_connected_pair",
    "sample_unreachable_pair",
]
