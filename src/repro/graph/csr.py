"""Compressed-sparse-row adjacency storage.

The paper stores edge lists as rows/columns of the adjacency matrix; CSR is
the standard memory-scalable realisation.  All arrays are NumPy so that
frontier expansion is a vectorised gather (``indices[indptr[v]:indptr[v+1]]``
concatenated via fancy indexing), following the "vectorise the inner loop"
idiom from the HPC guides.
"""

from __future__ import annotations

import numpy as np

from repro.types import VERTEX_DTYPE, as_vertex_array


class CsrGraph:
    """An undirected graph in CSR form.

    Parameters
    ----------
    n:
        Number of vertices (ids ``0 .. n-1``).
    indptr:
        ``int64`` array of length ``n + 1``; row ``v``'s neighbours are
        ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        ``int64`` array of neighbour ids, sorted within each row.

    The structure is symmetric: if ``u`` appears in ``v``'s row then ``v``
    appears in ``u``'s row.  Self-loops and duplicate edges are not stored.
    """

    __slots__ = ("n", "indptr", "indices")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        indptr = np.ascontiguousarray(indptr, dtype=VERTEX_DTYPE)
        indices = np.ascontiguousarray(indices, dtype=VERTEX_DTYPE)
        if indptr.shape != (n + 1,):
            raise ValueError(f"indptr must have length n+1={n + 1}, got {indptr.shape}")
        if indptr[0] != 0 or indptr[-1] != indices.shape[0]:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("indices contain out-of-range vertex ids")
        self.n = int(n)
        self.indptr = indptr
        self.indices = indices

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, n: int, edges: np.ndarray, *, symmetrize: bool = True) -> "CsrGraph":
        """Build CSR from an ``(m, 2)`` edge array.

        Duplicate edges and self-loops are dropped.  With ``symmetrize``
        (the default; the paper considers undirected graphs only), each
        edge ``(u, v)`` is stored in both rows.
        """
        edges = np.asarray(edges, dtype=VERTEX_DTYPE)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        if edges.size and (edges.min() < 0 or edges.max() >= n):
            raise ValueError("edge endpoints out of range")

        u, v = edges[:, 0], edges[:, 1]
        keep = u != v
        u, v = u[keep], v[keep]
        if symmetrize:
            src = np.concatenate([u, v])
            dst = np.concatenate([v, u])
        else:
            src, dst = u, v
        # Sort by (src, dst) then unique to drop duplicate edges.
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if src.size:
            uniq = np.empty(src.size, dtype=bool)
            uniq[0] = True
            np.logical_or(src[1:] != src[:-1], dst[1:] != dst[:-1], out=uniq[1:])
            src, dst = src[uniq], dst[uniq]
        indptr = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(n, indptr, dst)

    @classmethod
    def empty(cls, n: int) -> "CsrGraph":
        """Graph on ``n`` vertices with no edges."""
        return cls(n, np.zeros(n + 1, dtype=VERTEX_DTYPE), np.empty(0, dtype=VERTEX_DTYPE))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries, ``2m`` for undirected."""
        return int(self.indices.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m`` (assumes symmetric storage)."""
        return self.num_directed_edges // 2

    def degree(self, v: int | None = None) -> np.ndarray | int:
        """Degree of vertex ``v``, or the full degree array when ``v is None``."""
        if v is None:
            return np.diff(self.indptr)
        if not (0 <= v < self.n):
            raise IndexError(f"vertex {v} out of range [0, {self.n})")
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def average_degree(self) -> float:
        """Mean vertex degree, the paper's ``k``."""
        return self.num_directed_edges / self.n if self.n else 0.0

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of ``v`` (a read-only view, not a copy)."""
        if not (0 <= v < self.n):
            raise IndexError(f"vertex {v} out of range [0, {self.n})")
        view = self.indices[self.indptr[v] : self.indptr[v + 1]]
        view.flags.writeable = False
        return view

    def neighbors_of_set(self, frontier: np.ndarray) -> np.ndarray:
        """All neighbours of the vertices in ``frontier``, with duplicates.

        This is the vectorised core of frontier expansion: one fancy-indexed
        gather instead of a Python loop over vertices.
        """
        frontier = as_vertex_array(frontier)
        if frontier.size == 0:
            return np.empty(0, dtype=VERTEX_DTYPE)
        starts = self.indptr[frontier]
        stops = self.indptr[frontier + 1]
        lengths = stops - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=VERTEX_DTYPE)
        # Build the gather index: for each frontier vertex, the contiguous
        # range [start, stop) of its row; realised as cumulative offsets.
        out_offsets = np.concatenate(([0], np.cumsum(lengths)))
        gather = np.arange(total, dtype=VERTEX_DTYPE)
        gather += np.repeat(starts - out_offsets[:-1], lengths)
        return self.indices[gather]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search in ``u``'s sorted row."""
        row = self.indices[self.indptr[u] : self.indptr[u + 1]]
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def edge_array(self) -> np.ndarray:
        """Return the ``(m, 2)`` array of undirected edges with ``u < v``."""
        src = np.repeat(np.arange(self.n, dtype=VERTEX_DTYPE), np.diff(self.indptr))
        mask = src < self.indices
        return np.column_stack([src[mask], self.indices[mask]])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CsrGraph(n={self.n}, m={self.num_edges}, k~{self.average_degree:.2f})"
