"""Distributed graph generation: build per-rank structures without the
global graph.

The paper's largest instances (3.2 billion vertices, 32 billion edges)
cannot be materialised centrally — each node must generate exactly the
part of the adjacency matrix it stores.  The construction here makes that
possible *deterministically*:

The strict-upper-triangle pair space {u < v} is tiled by **cells**
``(bu, bv)`` with ``bu <= bv``, where ``bu``/``bv`` are the 2D layout's
block-row indices.  Every unordered pair lives in exactly one cell, and
each cell is sampled with its own seeded geometric-skipping G(n, p) stream
(seed derived from ``(seed, bu, bv)``) — so any rank can regenerate any
cell independently and all ranks agree on the global edge set without
communicating.

Rank ``(i, j)`` of an ``R x C`` mesh stores entry ``A[u, v]`` iff
``block(u) % R == i`` and ``block(v) // R == j``; it therefore needs the
cells ``(bu, bv)`` with ``bu % R == i`` and ``bv`` in column chunk ``j``
(for entries in that orientation) plus the mirrored cells — 2·P cells of
the (R·C)² total, so per-rank generation work is proportional to the
edges the rank stores: the scalable O(n k / P).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CsrGraph
from repro.partition.base import BlockDistribution
from repro.partition.indexing import VertexIndexMap
from repro.partition.two_d import RankLocal2D
from repro.types import VERTEX_DTYPE, GraphSpec, GridShape
from repro.utils.rng import RngFactory


def _cell_rng(spec: GraphSpec, bu: int, bv: int) -> np.random.Generator:
    return RngFactory(spec.seed).for_rank("dist-gen-cell", bu * (1 << 21) + bv)


def _sample_cell(
    spec: GraphSpec, dist: BlockDistribution, bu: int, bv: int
) -> np.ndarray:
    """Edges {u < v} of one cell: u in block bu, v in block bv (bu <= bv).

    Sampled with geometric skipping over the cell's pair space, so the
    cost is proportional to the expected number of edges in the cell.
    """
    if bu > bv:
        raise ValueError("cells are canonical: bu <= bv")
    p = spec.k / (spec.n - 1) if spec.n > 1 else 0.0
    if p <= 0:
        return np.empty((0, 2), dtype=VERTEX_DTYPE)
    u_lo, u_hi = dist.range_of(bu)
    v_lo, v_hi = dist.range_of(bv)
    nu, nv = u_hi - u_lo, v_hi - v_lo
    if nu == 0 or nv == 0:
        return np.empty((0, 2), dtype=VERTEX_DTYPE)
    rng = _cell_rng(spec, bu, bv)

    if bu == bv:
        # Triangular cell: pairs {u < v} within one block.
        total = nu * (nu - 1) // 2
        ids = _geometric_ids(rng, p, total)
        if ids.size == 0:
            return np.empty((0, 2), dtype=VERTEX_DTYPE)
        # invert triangular enumeration (row-major over u)
        u_local = np.floor(
            (2 * nu - 1 - np.sqrt((2 * nu - 1) ** 2 - 8 * ids.astype(np.float64))) / 2
        ).astype(np.int64)
        row_start = u_local * nu - u_local * (u_local + 1) // 2
        fix = row_start > ids
        u_local[fix] -= 1
        row_start = u_local * nu - u_local * (u_local + 1) // 2
        fix = ids - row_start >= (nu - 1 - u_local)
        u_local[fix] += 1
        row_start = u_local * nu - u_local * (u_local + 1) // 2
        v_local = u_local + 1 + (ids - row_start)
    else:
        # Rectangular cell: all nu * nv pairs, u strictly below v already.
        total = nu * nv
        ids = _geometric_ids(rng, p, total)
        if ids.size == 0:
            return np.empty((0, 2), dtype=VERTEX_DTYPE)
        u_local, v_local = np.divmod(ids, nv)
    return np.column_stack([u_local + u_lo, v_local + v_lo]).astype(VERTEX_DTYPE)


def _geometric_ids(rng: np.random.Generator, p: float, total: int) -> np.ndarray:
    """Indices of selected items among ``total``, via geometric gap skipping."""
    if total <= 0:
        return np.empty(0, dtype=np.int64)
    if p >= 1.0:
        return np.arange(total, dtype=np.int64)
    expected = max(8, int(total * p * 1.2) + 4)
    chosen: list[np.ndarray] = []
    position = -1
    while position < total - 1:
        gaps = rng.geometric(p, size=expected)
        ids = position + np.cumsum(gaps)
        inside = ids < total
        chosen.append(ids[inside])
        if not inside.all():
            break
        position = int(ids[-1])
    return np.concatenate(chosen).astype(np.int64) if chosen else np.empty(0, np.int64)


class DistributedGraphBuilder:
    """Per-rank 2D-layout construction, no global state for Poisson graphs.

    Poisson specs (``kind='poisson'``) are sampled cell by cell with
    independent seeded streams — the scalable path described above.
    R-MAT specs (``kind='rmat'``) have no per-cell decomposition (every
    recursive bit of an edge touches the whole adjacency matrix), so the
    generator materialises the canonical undirected edge list once per
    builder — deterministically, identical to
    :func:`repro.graph.generators.build_graph` — and buckets it into the
    same cell structure.  That keeps the per-rank interface and all
    downstream plumbing identical, at the cost of central generation; a
    truly distributed R-MAT would regenerate the shared stream on every
    rank, which costs the same total work per rank and is left out.
    """

    def __init__(self, spec: GraphSpec, grid: GridShape) -> None:
        self.spec = spec
        self.grid = grid
        self.dist = BlockDistribution(spec.n, grid.size)
        self._rmat_cells: dict[tuple[int, int], np.ndarray] | None = None
        if spec.kind == "rmat":
            self._rmat_cells = self._bucket_rmat_cells(spec)

    def _bucket_rmat_cells(self, spec: GraphSpec) -> dict[tuple[int, int], np.ndarray]:
        """Canonical undirected R-MAT edges, grouped by (bu, bv) cell."""
        from repro.graph.generators import rmat_edges
        from repro.utils.rng import RngFactory as _RngFactory

        rng = _RngFactory(spec.seed).named("rmat-graph")
        dirty = rmat_edges(spec.scale, spec.edge_factor, rng, a=spec.a, b=spec.b, c=spec.c)
        u = np.minimum(dirty[:, 0], dirty[:, 1])
        v = np.maximum(dirty[:, 0], dirty[:, 1])
        keep = u != v  # drop self-loops
        u, v = u[keep], v[keep]
        edges = np.unique(np.column_stack([u, v]), axis=0)
        bu = self.dist.part_of(edges[:, 0])
        bv = self.dist.part_of(edges[:, 1])
        order = np.lexsort((bv, bu))
        edges, bu, bv = edges[order], bu[order], bv[order]
        cuts = np.flatnonzero(np.diff(bu * self.grid.size + bv)) + 1
        bounds = np.concatenate(([0], cuts, [edges.shape[0]]))
        return {
            (int(bu[bounds[i]]), int(bv[bounds[i]])): edges[bounds[i] : bounds[i + 1]]
            for i in range(bounds.size - 1)
            if bounds[i + 1] > bounds[i]
        }

    def _cell_edges(self, bu: int, bv: int) -> np.ndarray:
        """Edges {u < v} of one canonical cell, for either graph kind."""
        if self._rmat_cells is not None:
            return self._rmat_cells.get(
                (bu, bv), np.empty((0, 2), dtype=VERTEX_DTYPE)
            )
        return _sample_cell(self.spec, self.dist, bu, bv)

    def cells_for_rank(self, rank: int) -> list[tuple[int, int]]:
        """Canonical cells rank ``(i, j)`` must sample (2P of them at most)."""
        R, C = self.grid.rows, self.grid.cols
        i, j = self.grid.coords_of(rank)
        my_rows = {s * R + i for s in range(C)}  # block rows stored here
        my_cols = set(range(j * R, (j + 1) * R))  # block rows of column chunk j
        cells: set[tuple[int, int]] = set()
        for bu in my_rows:
            for bv in my_cols:
                cells.add((min(bu, bv), max(bu, bv)))
        return sorted(cells)

    def build_rank(self, rank: int) -> RankLocal2D:
        """Generate rank ``(i, j)``'s :class:`RankLocal2D` from its cells."""
        R, C = self.grid.rows, self.grid.cols
        i, j = self.grid.coords_of(rank)
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        for bu, bv in self.cells_for_rank(rank):
            edges = self._cell_edges(bu, bv)
            if edges.size == 0:
                continue
            u, v = edges[:, 0], edges[:, 1]
            if bu % R == i and bv // R == j:  # orientation (u, v): row u, col v
                rows_parts.append(u)
                cols_parts.append(v)
            if bv % R == i and bu // R == j:  # orientation (v, u): row v, col u
                rows_parts.append(v)
                cols_parts.append(u)
        if rows_parts:
            rows = np.concatenate(rows_parts)
            cols = np.concatenate(cols_parts)
            order = np.lexsort((rows, cols))
            rows, cols = rows[order], cols[order]
        else:
            rows = np.empty(0, dtype=VERTEX_DTYPE)
            cols = np.empty(0, dtype=VERTEX_DTYPE)
        col_ids, col_counts = np.unique(cols, return_counts=True)
        col_indptr = np.concatenate(([0], np.cumsum(col_counts))).astype(VERTEX_DTYPE)
        own_block = j * R + i
        lo, hi = self.dist.range_of(own_block)
        return RankLocal2D(
            rank=rank,
            mesh_row=i,
            mesh_col=j,
            vertex_lo=lo,
            vertex_hi=hi,
            col_map=VertexIndexMap(col_ids),
            col_indptr=col_indptr,
            rows=rows,
            row_map=VertexIndexMap(np.unique(rows)),
        )

    def build_all(self) -> list[RankLocal2D]:
        """All ranks' structures (for testing / simulated runs)."""
        return [self.build_rank(rank) for rank in range(self.grid.size)]

    def build_partition(self):
        """A ready :class:`~repro.partition.two_d.TwoDPartition` built rank
        by rank — the global adjacency is never materialised."""
        from repro.partition.two_d import TwoDPartition

        return TwoDPartition.from_locals(self.spec.n, self.grid, self.build_all())

    def reference_graph(self) -> CsrGraph:
        """The same global graph, assembled centrally from all cells.

        Only feasible at test scale; used to verify that the distributed
        construction reproduces one consistent global edge set.
        """
        blocks = self.grid.size
        parts = [
            self._cell_edges(bu, bv)
            for bu in range(blocks)
            for bv in range(bu, blocks)
        ]
        parts = [p for p in parts if p.size]
        edges = (
            np.concatenate(parts) if parts else np.empty((0, 2), dtype=VERTEX_DTYPE)
        )
        return CsrGraph.from_edges(self.spec.n, edges)
