"""Interop with networkx (optional dependency).

networkx is only needed for these two helpers (and the test suite); the
core library never imports it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CsrGraph


def to_networkx(graph: CsrGraph):
    """Convert to a ``networkx.Graph`` (vertices 0..n-1 preserved)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    g.add_edges_from(graph.edge_array().tolist())
    return g


def from_networkx(g) -> CsrGraph:
    """Convert a ``networkx`` graph with integer node labels 0..n-1.

    Raises ``ValueError`` for other labelings (relabel first with
    ``networkx.convert_node_labels_to_integers``).
    """
    n = g.number_of_nodes()
    nodes = set(g.nodes)
    if nodes != set(range(n)):
        raise ValueError(
            "node labels must be exactly 0..n-1; use "
            "networkx.convert_node_labels_to_integers first"
        )
    edges = np.array(list(g.edges), dtype=np.int64).reshape(-1, 2)
    return CsrGraph.from_edges(n, edges)
