"""Connected components (BFS sweep) and component-aware helpers.

Workload plumbing for the experiments: Poisson graphs below the
connectivity threshold have stragglers, and several of the paper's
measurements need sources in the giant component (or provably unreachable
targets — Figure 6's worst case).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CsrGraph
from repro.graph.diameter import bfs_levels
from repro.types import UNREACHED, VERTEX_DTYPE


def connected_components(graph: CsrGraph) -> np.ndarray:
    """Component id per vertex (ids are 0-based, ordered by first vertex)."""
    labels = np.full(graph.n, -1, dtype=VERTEX_DTYPE)
    next_id = 0
    for start in range(graph.n):
        if labels[start] != -1:
            continue
        reached = bfs_levels(graph, start) != UNREACHED
        labels[reached] = next_id
        next_id += 1
    return labels


def component_sizes(graph: CsrGraph) -> np.ndarray:
    """Sizes of all components, largest first."""
    labels = connected_components(graph)
    _ids, counts = np.unique(labels, return_counts=True)
    return np.sort(counts)[::-1]


def giant_component(graph: CsrGraph) -> np.ndarray:
    """Vertex ids of the largest connected component."""
    labels = connected_components(graph)
    ids, counts = np.unique(labels, return_counts=True)
    return np.where(labels == ids[np.argmax(counts)])[0].astype(VERTEX_DTYPE)


def sample_connected_pair(
    graph: CsrGraph, rng: np.random.Generator
) -> tuple[int, int]:
    """A random (source, target) pair guaranteed to be connected.

    Raises ``ValueError`` when the graph has no component of size >= 2.
    """
    giant = giant_component(graph)
    if giant.size < 2:
        raise ValueError("graph has no connected pair of vertices")
    s, t = rng.choice(giant, size=2, replace=False)
    return int(s), int(t)


def sample_unreachable_pair(
    graph: CsrGraph, rng: np.random.Generator
) -> tuple[int, int]:
    """A random (source, target) pair in *different* components.

    This is Figure 6's worst-case setup.  Raises ``ValueError`` on a
    connected graph.
    """
    labels = connected_components(graph)
    if np.unique(labels).size < 2:
        raise ValueError("graph is connected: no unreachable pair exists")
    source = int(rng.integers(graph.n))
    others = np.where(labels != labels[source])[0]
    return source, int(others[rng.integers(others.size)])
