"""Random-graph generators.

The paper evaluates on *Poisson random graphs*: Erdős–Rényi graphs in which
"the probability of any two vertices being connected is equal" and vertex
degrees are Poisson-distributed with mean ``k``.  :func:`poisson_random_graph`
is the primary workload generator; :func:`rmat_edges` (Graph500-style R-MAT)
is provided as an extension workload with skewed degrees.

All samplers are vectorised: the G(n,p) sampler uses geometric gap-skipping
over the linearised strict-upper-triangle pair space, so its cost is
O(expected edges), never O(n^2).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CsrGraph
from repro.types import VERTEX_DTYPE, GraphSpec
from repro.utils.rng import RngFactory
from repro.utils.validation import check_probability


def build_graph(spec: GraphSpec) -> CsrGraph:
    """Materialise the graph described by ``spec``, dispatching on ``kind``.

    The single entry point the harness, session helpers, and CLI use so a
    :class:`GraphSpec` of any kind flows through the whole stack.  Poisson
    specs route to :func:`poisson_random_graph`; R-MAT specs sample
    :func:`rmat_edges` under a seed-derived named stream and clean up
    duplicates/self-loops via :meth:`CsrGraph.from_edges`.  Deterministic
    in ``spec`` (including ``seed``).
    """
    if spec.kind == "rmat":
        rng = RngFactory(spec.seed).named("rmat-graph")
        edges = rmat_edges(
            spec.scale, spec.edge_factor, rng, a=spec.a, b=spec.b, c=spec.c
        )
        return CsrGraph.from_edges(spec.n, edges)
    return poisson_random_graph(spec)


def poisson_random_graph(spec: GraphSpec) -> CsrGraph:
    """Generate the Poisson random graph described by ``spec``.

    Uses exact G(n, p) sampling with ``p = k / (n - 1)``, which yields
    Poisson(k)-distributed degrees for large ``n`` — the paper's model.
    """
    if spec.n == 1:
        return CsrGraph.empty(1)
    p = spec.k / (spec.n - 1)
    rng = RngFactory(spec.seed).named("poisson-graph")
    edges = gnp_edges(spec.n, p, rng)
    return CsrGraph.from_edges(spec.n, edges)


def gnp_edges(n: int, p: float, rng: np.random.Generator) -> np.ndarray:
    """Sample the edge set of a G(n, p) graph as an ``(m, 2)`` array.

    Each of the ``n*(n-1)/2`` unordered pairs is included independently with
    probability ``p``.  Implemented by geometric gap-skipping through the
    linearised pair index space, vectorised in blocks.
    """
    check_probability("p", p)
    if n < 2 or p == 0.0:
        return np.empty((0, 2), dtype=VERTEX_DTYPE)
    total_pairs = n * (n - 1) // 2
    if p == 1.0:
        pair_ids = np.arange(total_pairs, dtype=np.int64)
        return _pair_ids_to_edges(pair_ids, n)

    # Geometric skipping: gaps between successive selected pair indices are
    # iid Geometric(p).  Draw blocks of gaps until the cumulative index
    # passes total_pairs.
    expected = max(16, int(total_pairs * p * 1.1) + 4)
    selected: list[np.ndarray] = []
    position = -1  # index of the last selected pair
    while position < total_pairs - 1:
        gaps = rng.geometric(p, size=expected)
        ids = position + np.cumsum(gaps)
        inside = ids < total_pairs
        selected.append(ids[inside])
        if not inside.all():
            break
        position = int(ids[-1])
    pair_ids = np.concatenate(selected) if selected else np.empty(0, dtype=np.int64)
    return _pair_ids_to_edges(pair_ids.astype(np.int64, copy=False), n)


def gnm_edges(n: int, m: int, rng: np.random.Generator) -> np.ndarray:
    """Sample exactly ``m`` distinct edges uniformly (G(n, m) model)."""
    if n < 2:
        if m:
            raise ValueError("cannot place edges on fewer than two vertices")
        return np.empty((0, 2), dtype=VERTEX_DTYPE)
    total_pairs = n * (n - 1) // 2
    if m > total_pairs:
        raise ValueError(f"m={m} exceeds the {total_pairs} available pairs")
    if m == 0:
        return np.empty((0, 2), dtype=VERTEX_DTYPE)
    # Oversample with rejection until we have m distinct pair ids.  For the
    # sparse graphs used here (m << total_pairs) one round almost always
    # suffices.
    chosen = np.unique(rng.integers(0, total_pairs, size=int(m * 1.1) + 8))
    while chosen.size < m:
        extra = rng.integers(0, total_pairs, size=m)
        chosen = np.unique(np.concatenate([chosen, extra]))
    chosen = rng.permutation(chosen)[:m]
    return _pair_ids_to_edges(np.sort(chosen).astype(np.int64), n)


def rmat_edges(
    scale: int,
    edge_factor: int,
    rng: np.random.Generator,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> np.ndarray:
    """Sample R-MAT edges (Graph500 Kronecker defaults) on ``2**scale`` vertices.

    Returned edges may contain duplicates and self-loops;
    :meth:`CsrGraph.from_edges` cleans them up.  This is an *extension*
    workload — the paper itself uses Poisson graphs only — included because
    this paper directly influenced the Graph500 benchmark.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("R-MAT probabilities must be non-negative and sum to <= 1")
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    a_norm = a / ab if ab > 0 else 0.5
    c_norm = c / (c + d) if (c + d) > 0 else 0.5
    for _ in range(scale):
        r_bit = rng.random(m) > ab  # 1 => bottom half (row bit set)
        thresh = np.where(r_bit, c_norm, a_norm)
        c_bit = rng.random(m) > thresh  # 1 => right half (col bit set)
        src = (src << 1) | r_bit.astype(np.int64)
        dst = (dst << 1) | c_bit.astype(np.int64)
    return np.column_stack([src, dst]).astype(VERTEX_DTYPE)


def dedup_undirected_edges(edges: np.ndarray) -> np.ndarray:
    """Canonicalise an edge array: drop self-loops, sort endpoints, dedupe."""
    edges = np.asarray(edges, dtype=VERTEX_DTYPE)
    if edges.size == 0:
        return edges.reshape(0, 2)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    order = np.lexsort((hi, lo))
    lo, hi = lo[order], hi[order]
    if lo.size:
        uniq = np.empty(lo.size, dtype=bool)
        uniq[0] = True
        np.logical_or(lo[1:] != lo[:-1], hi[1:] != hi[:-1], out=uniq[1:])
        lo, hi = lo[uniq], hi[uniq]
    return np.column_stack([lo, hi])


def _pair_ids_to_edges(pair_ids: np.ndarray, n: int) -> np.ndarray:
    """Map linear strict-upper-triangle pair ids to ``(u, v)`` with u < v.

    Pairs are enumerated row-major: id 0 is (0,1), id n-2 is (0,n-1),
    id n-1 is (1,2), ...  Inverted in closed form (vectorised) via the
    quadratic formula on the row-start offsets.
    """
    if pair_ids.size == 0:
        return np.empty((0, 2), dtype=VERTEX_DTYPE)
    ids = pair_ids.astype(np.float64)
    nf = float(n)
    # Row u starts at offset S(u) = u*n - u*(u+1)/2.  Solve S(u) <= id.
    u = np.floor((2 * nf - 1 - np.sqrt((2 * nf - 1) ** 2 - 8 * ids)) / 2).astype(np.int64)
    # Guard against floating-point off-by-one at row boundaries.
    row_start = u * n - u * (u + 1) // 2
    too_big = row_start > pair_ids
    u[too_big] -= 1
    row_start = u * n - u * (u + 1) // 2
    too_small = pair_ids - row_start >= (n - 1 - u)
    u[too_small] += 1
    row_start = u * n - u * (u + 1) // 2
    v = u + 1 + (pair_ids - row_start)
    return np.column_stack([u, v]).astype(VERTEX_DTYPE)


def lattice_edges(width: int, height: int, *, periodic: bool = False) -> np.ndarray:
    """Edges of a ``width x height`` grid graph (vertex ``y * width + x``).

    A stress workload outside the paper's Poisson model: diameter
    O(width + height), so the level-synchronous loop runs hundreds of
    levels with small frontiers — the opposite regime from the explosive
    random-graph frontier.  ``periodic`` wraps both dimensions (a torus).
    """
    if width < 1 or height < 1:
        raise ValueError(f"lattice dimensions must be positive, got {width}x{height}")
    xs, ys = np.meshgrid(np.arange(width), np.arange(height))
    ids = (ys * width + xs).ravel()
    edges = []
    right_ok = (xs < width - 1) if not periodic else (np.ones_like(xs, bool) & (width > 1))
    down_ok = (ys < height - 1) if not periodic else (np.ones_like(ys, bool) & (height > 1))
    right = (ys * width + (xs + 1) % width).ravel()
    down = (((ys + 1) % height) * width + xs).ravel()
    edges.append(np.column_stack([ids[right_ok.ravel()], right[right_ok.ravel()]]))
    edges.append(np.column_stack([ids[down_ok.ravel()], down[down_ok.ravel()]]))
    return dedup_undirected_edges(np.concatenate(edges).astype(VERTEX_DTYPE))


def ring_edges(n: int) -> np.ndarray:
    """Edges of an ``n``-cycle — the maximum-diameter connected workload."""
    if n < 2:
        return np.empty((0, 2), dtype=VERTEX_DTYPE)
    ids = np.arange(n, dtype=VERTEX_DTYPE)
    return dedup_undirected_edges(np.column_stack([ids, (ids + 1) % n]))
