"""Command-line interface.

Subcommands::

    repro-bfs generate   --out graph.npz --n 20000 --k 10 [--rmat --scale 14]
    repro-bfs bfs        --graph graph.npz --grid 4x4 --source 0 [--target T]
    repro-bfs bidir      --graph graph.npz --grid 4x4 --source S --target T
    repro-bfs serve      --graph graph.npz --grid 4x4 --port 7475
    repro-bfs digest     --n 20000 --k 8 --seed 7 --grid 4x4
    repro-bfs crossover  --n 4e7 --p 400
    repro-bfs figure     --name fig4a|fig4b|fig4c|fig5|fig6|fig7

`bfs` and `bidir` accept either a stored graph (``--graph``) or generation
parameters (``--n/--k/--seed``) to build one on the fly; ``bfs
--validate`` runs the Graph500-style structural checks on the result.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

import numpy as np

from repro.analysis.crossover import crossover_degree
from repro.api import bidirectional_bfs, distributed_bfs
from repro.bfs.direction import DIRECTION_MODES, DirectionPolicy
from repro.bfs.options import BfsOptions
from repro.bfs.tree import build_parent_tree, validate_bfs_result
from repro.graph.csr import CsrGraph
from repro.graph.generators import build_graph, poisson_random_graph, rmat_edges
from repro.faults import FaultSpec
from repro.graph.io import read_edge_list, write_edge_list
from repro.harness import figures as figs
from repro.harness.report import format_series, format_table
from repro.observability import OBSERVE_PRESETS, export_artifacts, result_digests
from repro.types import SYSTEM_PRESETS, GraphSpec, GridShape, SystemSpec, resolve_system
from repro.utils.logging import configure_logging
from repro.utils.rng import RngFactory


def _parse_grid(text: str) -> GridShape:
    try:
        rows, cols = text.lower().split("x")
        return GridShape(int(rows), int(cols))
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(f"grid must look like '4x4', got {text!r}") from exc


def _add_graph_source_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--graph", help="path to a stored graph (.npz or text)")
    parser.add_argument(
        "--graph-kind", choices=["poisson", "rmat"], default="poisson",
        help="generated-graph family: Poisson (paper baseline) or scale-free R-MAT",
    )
    parser.add_argument("--n", type=int, default=10_000, help="vertices (generated graph)")
    parser.add_argument("--k", type=float, default=10.0, help="average degree")
    parser.add_argument("--seed", type=int, default=0, help="generation seed")
    parser.add_argument("--scale", type=int, default=14,
                        help="R-MAT: log2(vertices) (with --graph-kind rmat)")
    parser.add_argument("--edge-factor", type=int, default=16,
                        help="R-MAT: edges per vertex (with --graph-kind rmat)")


def _graph_spec_from(args) -> GraphSpec:
    if args.graph_kind == "rmat":
        return GraphSpec.rmat(args.scale, edge_factor=args.edge_factor, seed=args.seed)
    return GraphSpec(n=args.n, k=args.k, seed=args.seed)


def _load_graph(args) -> CsrGraph:
    if args.graph:
        return read_edge_list(args.graph)
    return build_graph(_graph_spec_from(args))


def _add_bfs_option_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--grid", type=_parse_grid, default=GridShape(4, 4))
    parser.add_argument(
        "--system", choices=sorted(SYSTEM_PRESETS), default=None,
        help="system preset (machine+mapping+layout); individual flags override it",
    )
    parser.add_argument("--layout", choices=["1d", "2d"], default=None)
    parser.add_argument(
        "--expand", default="direct",
        choices=["direct", "ring", "two-phase", "recursive-doubling"],
    )
    parser.add_argument(
        "--fold", default="union-ring",
        choices=["direct", "ring", "union-ring", "two-phase", "bruck"],
    )
    parser.add_argument("--machine", choices=["bluegene", "mcr"], default=None)
    parser.add_argument("--mapping", choices=["planar", "row-major"], default=None)
    parser.add_argument(
        "--wire-codec", choices=["raw", "delta-varint", "bitmap", "adaptive"],
        default=None,
        help="frontier compression codec on the wire (default: the system "
             "preset's codec, 'raw' unless the preset says otherwise)",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec: a preset (mild, harsh, crash-spare, "
             "crash-shrink, crash-harsh) or e.g. 'drop=0.05,crash=0.1,"
             "recovery=spare,degrade=0.25x4,straggler=0.1x3,down=2,seed=7'",
    )
    parser.add_argument(
        "--direction", choices=list(DIRECTION_MODES), default="top-down",
        help="per-level traversal direction: fixed top-down/bottom-up, the "
             "counts-based hybrid switch, or the cost-model schedule",
    )
    parser.add_argument("--alpha", type=float, default=6.0,
                        help="hybrid: go bottom-up when frontier > unvisited/alpha")
    parser.add_argument("--beta", type=float, default=24.0,
                        help="hybrid: return top-down when frontier < n/beta")
    parser.add_argument("--no-sent-cache", action="store_true")
    parser.add_argument(
        "--sieve", action="store_true",
        help="filter fold candidates against sender-side shadows of each "
             "destination's visited set so already-visited vertices never "
             "hit the wire (union-ring fold only; composes with --faults)",
    )
    parser.add_argument("--buffer-capacity", type=int, default=None)
    parser.add_argument(
        "--observe", choices=sorted(OBSERVE_PRESETS), default=None,
        help="observability preset: spans, messages, full, or off (default). "
             "--trace-out implies 'full' unless set explicitly",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace-event / Perfetto JSON timeline here",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the unified metrics registry here (.json for JSON, else CSV)",
    )


def _options_from(args) -> BfsOptions:
    direction = DirectionPolicy(
        mode=args.direction, alpha=args.alpha, beta=args.beta
    )
    if args.direction == "model":
        if getattr(args, "graph", None):
            raise SystemExit(
                "--direction model needs the analytic GraphSpec and cannot be "
                "used with a stored --graph; use --direction hybrid instead"
            )
        direction = DirectionPolicy.model_for(
            _graph_spec_from(args), alpha=args.alpha, beta=args.beta
        )
    return BfsOptions(
        expand_collective=args.expand,
        fold_collective=args.fold,
        use_sent_cache=not args.no_sent_cache,
        use_sieve=args.sieve,
        buffer_capacity=args.buffer_capacity,
        direction=direction,
    )


def _faults_from(args) -> FaultSpec | None:
    if args.faults is None:
        return None
    spec = FaultSpec.parse(args.faults)
    return spec if spec.active else None


def _observe_from(args) -> str | None:
    if args.observe is not None:
        return args.observe
    # A requested trace needs spans + messages recorded.
    return "full" if args.trace_out else None


def _system_from(args, observe: str | None) -> SystemSpec:
    """Resolve the CLI's system flags into one spec.

    Goes straight to :func:`resolve_system`: the individual flags are the
    CLI's own surface for the spec's fields, not the deprecated Python
    keyword arguments, so no deprecation warning fires.
    """
    return resolve_system(
        args.system,
        machine=args.machine,
        mapping=args.mapping,
        layout=args.layout,
        wire=args.wire_codec,
        faults=_faults_from(args),
        observe=observe,
        sieve=args.sieve or None,
    )


def _export_from(args, result) -> None:
    written = export_artifacts(
        result, trace_out=args.trace_out, metrics_out=args.metrics_out
    )
    for path in written:
        print(f"wrote {path}")


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #
def cmd_generate(args) -> int:
    if args.rmat:
        # --n/--k parameterise the Poisson generator only; silently ignoring
        # them under --rmat produced graphs the user did not ask for.
        explicit = [
            f"--{name}" for name in ("n", "k") if getattr(args, name) is not None
        ]
        if explicit:
            verb = "applies" if len(explicit) == 1 else "apply"
            raise SystemExit(
                f"{' and '.join(explicit)} {verb} to Poisson generation only "
                "and would be ignored by --rmat; use --scale (log2 vertices) "
                "and --edge-factor instead"
            )
        rng = RngFactory(args.seed).named("cli-rmat")
        edges = rmat_edges(args.scale, args.edge_factor, rng)
        graph = CsrGraph.from_edges(1 << args.scale, edges)
    else:
        n = args.n if args.n is not None else 10_000
        k = args.k if args.k is not None else 10.0
        graph = poisson_random_graph(GraphSpec(n=n, k=k, seed=args.seed))
    write_edge_list(graph, args.out)
    print(
        f"wrote {args.out}: n={graph.n} m={graph.num_edges} "
        f"mean-degree={graph.average_degree:.2f}"
    )
    return 0


def cmd_bfs(args) -> int:
    graph = _load_graph(args)
    result = distributed_bfs(
        graph,
        args.grid,
        args.source,
        target=args.target,
        opts=_options_from(args),
        system=_system_from(args, _observe_from(args)),
    )
    _export_from(args, result)
    print(result.summary())
    print(
        f"simulated: total {result.elapsed:.6f}s, comm {result.comm_time:.6f}s, "
        f"compute {result.compute_time:.6f}s"
    )
    print(f"messages {result.stats.total_messages}, bytes {result.stats.total_bytes}")
    if result.stats.total_encoded_bytes != result.stats.total_bytes:
        print(
            f"encoded bytes {result.stats.total_encoded_bytes} "
            f"(compression x{result.stats.compression_ratio:.2f})"
        )
    if result.faults is not None:
        print(result.faults.summary())
    print(format_series(
        "volume/level", range(len(result.stats.levels)),
        result.stats.volume_per_level().tolist(),
    ))
    if args.validate:
        parents = build_parent_tree(graph, result.levels)
        report = validate_bfs_result(graph, args.source, result.levels, parents)
        print(str(report))
        if not report.ok:
            return 1
    return 0


def cmd_bidir(args) -> int:
    graph = _load_graph(args)
    result = bidirectional_bfs(
        graph, args.grid, args.source, args.target,
        opts=_options_from(args),
        system=_system_from(args, _observe_from(args)),
    )
    _export_from(args, result)
    print(result.summary())
    if result.faults is not None:
        print(result.faults.summary())
    return 0


def cmd_digest(args) -> int:
    graph = _load_graph(args)
    result = distributed_bfs(
        graph,
        args.grid,
        args.source,
        opts=_options_from(args),
        system=_system_from(args, args.observe),
    )
    for name, digest in sorted(result_digests(result).items()):
        print(f"{name} {digest}")
    return 0


def cmd_serve(args) -> int:
    from repro.server import BfsService, serve_tcp
    from repro.session import BfsSession

    graph = _load_graph(args)
    session = BfsSession(
        graph, args.grid,
        opts=_options_from(args),
        system=_system_from(args, _observe_from(args)),
    )
    service = BfsService(
        session, max_batch=args.max_batch, max_queue=args.max_queue,
        default_deadline=(
            args.deadline_ms / 1e3 if args.deadline_ms is not None else None
        ),
        fault_retries=args.fault_retries,
    )

    async def _serve() -> None:
        server = await serve_tcp(service, args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(
            f"serving BFS queries on {host}:{port} "
            f"(n={graph.n}, grid {args.grid.rows}x{args.grid.cols}, "
            f"layout {session.layout}, max_batch={service.max_batch}); "
            "JSON lines, one query per line — Ctrl-C to stop",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            server.close()
            await server.wait_closed()
            await service.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    snap = service.metrics.snapshot()
    print(
        f"served {snap['served']} queries in {snap['batches']} batches "
        f"(mean batch {snap['mean_batch_size']}, rejected {snap['rejected']})"
    )
    return 0


def cmd_crossover(args) -> int:
    k = crossover_degree(args.n, args.p)
    print(
        f"1D/2D crossover for n={args.n:g}, P={args.p:g}: k = {k:.3f} "
        f"(1D wins below, 2D wins above)"
    )
    return 0


def cmd_scorecard(args) -> int:
    from repro.harness.scorecard import format_scorecard, run_scorecard

    checks = run_scorecard(seed=args.seed)
    print(format_scorecard(checks))
    return 0 if all(c.passed for c in checks) else 1


def cmd_figure(args) -> int:
    name = args.name
    if name == "fig4a":
        points = figs.fig4a_weak_scaling([1, 4, 16, 64], 500, 10.0, searches=2)
        rows = [[p.p, p.n, f"{p.mean_time:.6f}", f"{p.comm_time:.6f}"] for p in points]
        print(format_table(["P", "n", "time(s)", "comm(s)"], rows))
    elif name == "fig4b":
        series = figs.fig4b_message_volume(30_000, 10.0, 16)
        print(format_series("volume", [d for d, _ in series], [v for _, v in series]))
    elif name == "fig4c":
        rows = figs.fig4c_bidirectional([4, 16], 300, 10.0, searches=2)
        print(format_table(["P", "uni(s)", "bi(s)"],
                           [[p, f"{u:.6f}", f"{b:.6f}"] for p, u, b in rows]))
    elif name == "fig5":
        rows = figs.fig5_strong_scaling(16_000, 10.0, [1, 4, 16, 64], searches=2)
        print(format_table(["P", "time(s)"], [[p, f"{t:.6f}"] for p, t in rows]))
    elif name == "fig6":
        series = figs.fig6_partition_volume(20_000, 10.0, 16)
        for label, volume in series.items():
            print(format_series(label, range(len(volume)), volume.tolist()))
    elif name == "fig7":
        rows = figs.fig7_redundancy([4, 16, 64], 300, 10.0)
        print(format_table(["P", "redundancy %"], [[p, f"{r:.1f}"] for p, r in rows]))
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown figure {name}")
    return 0


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bfs",
        description="Distributed-parallel BFS (Yoo et al., SC 2005) on a simulated BlueGene/L",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="enable per-level debug logging")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and store a graph")
    gen.add_argument("--out", required=True)
    # defaults are filled in cmd_generate: None detects explicit use so
    # --rmat can reject Poisson-only parameters instead of ignoring them
    gen.add_argument("--n", type=int, default=None,
                     help="Poisson: vertices (default 10000)")
    gen.add_argument("--k", type=float, default=None,
                     help="Poisson: average degree (default 10)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--rmat", action="store_true", help="R-MAT instead of Poisson")
    gen.add_argument("--scale", type=int, default=14, help="R-MAT: log2(vertices)")
    gen.add_argument("--edge-factor", type=int, default=16, help="R-MAT: edges per vertex")
    gen.set_defaults(func=cmd_generate)

    bfs = sub.add_parser("bfs", help="run a distributed BFS")
    _add_graph_source_args(bfs)
    _add_bfs_option_args(bfs)
    bfs.add_argument("--source", type=int, default=0)
    bfs.add_argument("--target", type=int, default=None)
    bfs.add_argument("--validate", action="store_true",
                     help="run Graph500-style structural validation")
    bfs.set_defaults(func=cmd_bfs)

    bid = sub.add_parser("bidir", help="run a bi-directional s-t search")
    _add_graph_source_args(bid)
    _add_bfs_option_args(bid)
    bid.add_argument("--source", type=int, required=True)
    bid.add_argument("--target", type=int, required=True)
    bid.set_defaults(func=cmd_bidir)

    srv = sub.add_parser(
        "serve",
        help="run the BFS session server (JSON-lines over TCP; see docs/SERVER.md)",
    )
    _add_graph_source_args(srv)
    _add_bfs_option_args(srv)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7475,
                     help="TCP port (0 = ephemeral; default 7475)")
    srv.add_argument("--max-batch", type=int, default=64,
                     help="sources per MS-BFS traversal (1-64, default 64)")
    srv.add_argument("--max-queue", type=int, default=1024,
                     help="admission bound: queries waiting beyond this are "
                          "rejected as overloaded (default 1024)")
    srv.add_argument("--deadline-ms", type=float, default=None,
                     help="default per-query deadline in milliseconds; "
                          "queries still waiting past it fail with "
                          "error_code='deadline' (default: none)")
    srv.add_argument("--fault-retries", type=int, default=2,
                     help="batch retries (reseeded fault schedule, backoff) "
                          "after an unrecoverable FaultError (default 2)")
    srv.set_defaults(func=cmd_serve)

    dig = sub.add_parser(
        "digest",
        help="print deterministic sha256 digests of a BFS run "
             "(levels/stats/clock, plus trace when observed)",
    )
    _add_graph_source_args(dig)
    _add_bfs_option_args(dig)
    dig.add_argument("--source", type=int, default=0)
    dig.set_defaults(func=cmd_digest)

    cross = sub.add_parser("crossover", help="solve the 1D/2D crossover degree")
    cross.add_argument("--n", type=float, required=True)
    cross.add_argument("--p", type=float, required=True)
    cross.set_defaults(func=cmd_crossover)

    score = sub.add_parser(
        "scorecard", help="check every paper claim in one shot (PASS/FAIL table)"
    )
    score.add_argument("--seed", type=int, default=0)
    score.set_defaults(func=cmd_scorecard)

    fig = sub.add_parser("figure", help="regenerate a paper figure (scaled down)")
    fig.add_argument(
        "--name", required=True,
        choices=["fig4a", "fig4b", "fig4c", "fig5", "fig6", "fig7"],
    )
    fig.set_defaults(func=cmd_figure)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "verbose", False):
        configure_logging("DEBUG")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
