#!/usr/bin/env python3
"""Quickstart: distributed BFS on a Poisson random graph in a dozen lines.

Generates the paper's workload (an Erdős–Rényi graph with Poisson degrees),
partitions it over a 4x4 virtual processor mesh (the 2D edge partitioning of
Yoo et al., SC'05), runs the level-synchronized BFS on the simulated
BlueGene/L, and prints what the paper's instrumentation would show: levels,
per-level message volume, and the comm/compute split.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import BfsOptions, GraphSpec, distributed_bfs, poisson_random_graph, serial_bfs

import numpy as np


def main() -> None:
    spec = GraphSpec(n=20_000, k=10, seed=42)
    graph = poisson_random_graph(spec)
    print(f"graph: n={graph.n}, m={graph.num_edges}, mean degree {graph.average_degree:.2f}")

    # The paper's configuration: 2D partitioning, two-phase grouped-ring
    # collectives with the set-union fold, sent-neighbours cache.
    opts = BfsOptions(expand_collective="two-phase", fold_collective="two-phase")
    result = distributed_bfs(graph, grid=(4, 4), source=0, opts=opts)
    print(result.summary())

    print("\nlevel  frontier  expand-recv  fold-recv  duplicates-eliminated")
    for s in result.stats.levels:
        print(
            f"{s.level:5d}  {s.frontier_size:8d}  {s.expand_received:11d}  "
            f"{s.fold_received:9d}  {s.duplicates_eliminated:12d}"
        )

    print(
        f"\nsimulated time {result.elapsed * 1e3:.3f} ms "
        f"(comm {result.comm_time * 1e3:.3f} ms, compute {result.compute_time * 1e3:.3f} ms)"
    )
    print(f"total messages {result.stats.total_messages}, bytes {result.stats.total_bytes}")

    # Sanity: the distributed run equals a serial BFS, always.
    assert np.array_equal(result.levels, serial_bfs(graph, 0))
    print("verified against serial BFS: OK")


if __name__ == "__main__":
    main()
