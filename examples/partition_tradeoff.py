#!/usr/bin/env python3
"""The 1D-vs-2D partitioning trade-off and its analytic crossover (Figure 6).

For a fixed graph size and processor count, sweeps the average degree k,
measures the total message volume of both layouts on a worst-case search
(unreachable target), and overlays the paper's analytic crossover degree
solved from

    n * gamma(n/P) * (P-1)/P = 2 * (n/P) * gamma(n/sqrt(P)) * (sqrt(P)-1).

Low-degree graphs favour 1D (its expand is free); high-degree graphs
favour 2D (collectives over sqrt(P) ranks); the measured crossover should
land near the analytic root.

Run:  python examples/partition_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.crossover import crossover_degree
from repro.harness.figures import fig6_partition_volume
from repro.harness.report import format_table

N = 30_000
P = 100
DEGREES = [5.0, 10.0, 20.0, 40.0, 80.0]


def main() -> None:
    k_star = crossover_degree(N, P)
    print(f"analytic 1D/2D crossover for n={N}, P={P}: k = {k_star:.1f}")
    print(f"(paper's design point: k = 34 for n=4e7, P=400)\n")

    rows = []
    measured_crossover = None
    previous_sign = None
    for k in DEGREES:
        series = fig6_partition_volume(N, k, P, seed=3)
        v1, v2 = int(series["1d"].sum()), int(series["2d"].sum())
        winner = "1D" if v1 < v2 else "2D"
        rows.append([k, v1, v2, f"{v1 / v2:.2f}", winner])
        sign = v1 < v2
        if previous_sign is not None and sign != previous_sign and measured_crossover is None:
            measured_crossover = k
        previous_sign = sign
    print(format_table(["k", "1D volume", "2D volume", "1D/2D", "winner"], rows))

    if measured_crossover is not None:
        print(
            f"\nmeasured crossover between k={measured_crossover / 2:.0f} "
            f"and k={measured_crossover:.0f}; analytic prediction {k_star:.1f}"
        )
    print(
        "\npaper's conclusion: 1D wins on low-degree graphs (short expand), "
        "2D wins on high-degree graphs (collectives over sqrt(P) ranks)."
    )


if __name__ == "__main__":
    main()
