#!/usr/bin/env python3
"""A Graph500-style benchmark run — the paper's direct legacy.

This paper's 2D-partitioned BFS became the blueprint for the Graph500
benchmark.  This example runs the full Graph500-shaped pipeline on the
library:

1. generate a Kronecker/R-MAT graph (scale, edge factor),
2. apply a random vertex relabeling (skewed hubs break block partitions),
3. run the distributed 2D BFS from several random roots, on BOTH
   backends: the simulated BlueGene/L runtime (for modelled timing and
   message statistics) and the real-parallel SPMD multiprocessing backend
   (one OS process per rank),
4. validate every result with Graph500-style structural checks, and
5. report modelled TEPS (traversed edges per second).

Run:  python examples/graph500_style.py
"""

from __future__ import annotations

import numpy as np

from repro.api import distributed_bfs
from repro.backends.spmd import spmd_bfs
from repro.bfs.options import BfsOptions
from repro.bfs.tree import build_parent_tree, validate_bfs_result
from repro.graph.csr import CsrGraph
from repro.graph.generators import rmat_edges
from repro.partition.balance import balance_report
from repro.partition.permutation import relabel_graph
from repro.partition.two_d import TwoDPartition
from repro.types import GridShape, UNREACHED
from repro.utils.rng import RngFactory

SCALE = 13          # 8192 vertices
EDGE_FACTOR = 16
GRID = GridShape(4, 4)
NUM_ROOTS = 4


def main() -> None:
    rng = RngFactory(21).named("graph500")
    edges = rmat_edges(SCALE, EDGE_FACTOR, rng)
    raw = CsrGraph.from_edges(1 << SCALE, edges)
    print(f"R-MAT scale={SCALE} ef={EDGE_FACTOR}: n={raw.n}, m={raw.num_edges}")

    # Load balance: blocks of an R-MAT graph are badly skewed; relabel.
    before = balance_report(TwoDPartition(raw, GRID), "edge_entries")
    graph, relabeling = relabel_graph(raw, seed=22)
    after = balance_report(TwoDPartition(graph, GRID), "edge_entries")
    print(f"edge imbalance: raw {before.imbalance:.2f} -> relabeled {after.imbalance:.2f}")

    opts = BfsOptions(expand_collective="two-phase", fold_collective="two-phase")
    degrees = graph.degree()
    candidates = np.where(degrees > 0)[0]
    roots = [int(candidates[rng.integers(candidates.size)]) for _ in range(NUM_ROOTS)]

    print(f"\n{'root':>6}  {'reached':>8}  {'levels':>6}  {'time':>10}  {'TEPS':>10}  checks")
    for root in roots:
        result = distributed_bfs(graph, GRID, root, opts=opts)

        # Graph500-style validation (structural, oracle-free).
        parents = build_parent_tree(graph, result.levels)
        report = validate_bfs_result(graph, root, result.levels, parents)

        # Real-parallel backend must agree exactly.
        spmd_levels = spmd_bfs(graph, GRID, root, timeout=120)
        assert np.array_equal(spmd_levels, result.levels), "SPMD backend deviates"

        # TEPS against the modelled machine time: edges in the traversed
        # component / simulated seconds.
        reached = result.levels != UNREACHED
        traversed_edges = int(graph.degree()[reached].sum()) // 2
        teps = traversed_edges / result.elapsed if result.elapsed else float("inf")
        print(
            f"{root:>6}  {int(reached.sum()):>8}  {result.num_levels:>6}  "
            f"{result.elapsed:>9.5f}s  {teps:>9.2e}  "
            f"{'OK' if report.ok else 'FAILED'} + spmd-match"
        )

    print(
        "\n(The TEPS figures are against *modelled* BlueGene/L time; the "
        "paper's machine would report its own — shapes, not seconds.)"
    )


if __name__ == "__main__":
    main()
