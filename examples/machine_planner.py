#!/usr/bin/env python3
"""Capacity planning with the paper's analytic models — no simulation needed.

Given a target graph (n, k) and a machine (node count, memory per node),
this example answers the questions the paper's Sections 3.1–3.2 let you
answer on paper:

* does the graph *fit* (the Section 2.4 memory model)?
* which mesh shape R x C balances expand and fold traffic?
* what per-level message volume should each rank budget for?
* would 1D or 2D partitioning move less data at this degree?

It reproduces the paper's own headline as the first case: 3.2 billion
vertices, average degree 10, on 32,768 nodes with 512 MB each.

Run:  python examples/machine_planner.py
"""

from __future__ import annotations

from repro.analysis.crossover import crossover_degree
from repro.analysis.memory import BLUEGENE_L_NODE_MEMORY, MemoryModel, fits_in_memory
from repro.analysis.model import MessageLengthModel
from repro.collectives.two_phase import subgrid_shape
from repro.harness.report import format_table
from repro.types import GridShape

CASES = [
    # (label, n, k, nodes, memory/node)
    ("paper headline", 100_000 * 32_768, 10.0, 32_768, BLUEGENE_L_NODE_MEMORY),
    ("dense graph", 10_000 * 32_768, 100.0, 32_768, BLUEGENE_L_NODE_MEMORY),
    ("small cluster", 50_000_000, 16.0, 256, 4 * 1024**3),
    ("undersized", 2_000_000 * 1_024, 10.0, 1_024, BLUEGENE_L_NODE_MEMORY),
]


def candidate_grids(p: int) -> list[GridShape]:
    a, b = subgrid_shape(p)
    shapes = {(a, b), (b, a), (p, 1), (1, p)}
    return [GridShape(r, c) for r, c in sorted(shapes)]


def plan(label: str, n: int, k: float, nodes: int, memory: int) -> None:
    print(f"\n=== {label}: n={n:,}, k={k:g}, {nodes} nodes x {memory / 2**30:.1f} GiB ===")
    rows = []
    for grid in candidate_grids(nodes):
        mem = MemoryModel(n=n, k=k, grid=grid)
        msg = MessageLengthModel(n=n, k=k, rows=grid.rows, cols=grid.cols)
        rows.append(
            [
                f"{grid.rows}x{grid.cols}",
                f"{mem.total_bytes / 2**20:.0f}",
                "yes" if fits_in_memory(mem, memory) else "NO",
                f"{msg.expand_2d:.3g}",
                f"{msg.fold_2d:.3g}",
                f"{msg.expand_2d + msg.fold_2d:.3g}",
            ]
        )
    print(format_table(
        ["mesh", "MB/rank", "fits", "expand len", "fold len", "total len"], rows
    ))
    try:
        k_star = crossover_degree(n, nodes)
        winner = "2D" if k > k_star else "1D"
        print(
            f"1D/2D crossover at this scale: k* = {k_star:.1f} -> {winner} "
            f"moves less data at k={k:g}\n"
            "(volume only: 2D still wins on collective latency, since its "
            "groups span sqrt(P) ranks — the paper's Table 1 effect)"
        )
    except ValueError:
        print("no 1D/2D crossover in range for this configuration")


def main() -> None:
    for case in CASES:
        plan(*case)
    print(
        "\n(The memory and message columns are the paper's Section 2.4/3.1 "
        "expectations, evaluated exactly — no scaling-down required.)"
    )


if __name__ == "__main__":
    main()
