#!/usr/bin/env python3
"""Regenerate every paper figure/table as text + CSV artifacts.

Runs all the harness figure builders at quick design points and writes the
series to ``results/`` (text in the paper's row format plus machine-
readable CSV).  The benchmark suite (`pytest benchmarks/ --benchmark-only`)
is the asserted version of the same content at larger design points; this
script is the "give me the numbers as files" entry point.

Run:  python examples/reproduce_all.py  [output_dir]
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path

from repro.analysis.crossover import crossover_degree
from repro.analysis.memory import MemoryModel, fits_in_memory
from repro.harness import figures as F
from repro.harness.report import format_series, format_table
from repro.types import GridShape


def write(out_dir: Path, name: str, text: str, rows: list[dict] | None = None) -> None:
    (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    if rows:
        with (out_dir / f"{name}.csv").open("w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
    print(f"wrote {name}")


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)

    # Figure 4.a — weak scaling
    points = F.fig4a_weak_scaling([1, 4, 16, 64], 500, 10.0, searches=2)
    rows = [
        {"P": p.p, "n": p.n, "time_s": p.mean_time, "comm_s": p.comm_time,
         "compute_s": p.compute_time}
        for p in points
    ]
    write(
        out_dir, "fig4a_weak_scaling",
        format_table(["P", "n", "time(s)", "comm(s)"],
                     [[r["P"], r["n"], f"{r['time_s']:.6f}", f"{r['comm_s']:.6f}"]
                      for r in rows]),
        rows,
    )

    # Figure 4.b — volume vs path length
    series = F.fig4b_message_volume(30_000, 10.0, 16)
    rows = [{"path_length": d, "volume": v} for d, v in series]
    write(out_dir, "fig4b_message_volume",
          format_series("volume", [d for d, _ in series], [v for _, v in series]), rows)

    # Figure 4.c — bi-directional
    bi = F.fig4c_bidirectional([4, 16], 400, 10.0, searches=3)
    rows = [{"P": p, "uni_s": u, "bi_s": b} for p, u, b in bi]
    write(out_dir, "fig4c_bidirectional",
          format_table(["P", "uni(s)", "bi(s)"],
                       [[p, f"{u:.6f}", f"{b:.6f}"] for p, u, b in bi]), rows)

    # Figure 5 — strong scaling
    strong = F.fig5_strong_scaling(24_000, 10.0, [1, 4, 16, 64], searches=2)
    base = strong[0][1]
    rows = [{"P": p, "time_s": t, "speedup": base / t} for p, t in strong]
    write(out_dir, "fig5_strong_scaling",
          format_table(["P", "time(s)", "speedup"],
                       [[r["P"], f"{r['time_s']:.6f}", f"{r['speedup']:.2f}"]
                        for r in rows]), rows)

    # Table 1 — topologies
    grids = [GridShape(4, 8), GridShape(8, 4), GridShape(32, 1), GridShape(1, 32)]
    table = F.table1_topologies(300, 10.0, grids, searches=2)
    rows = [
        {"grid": f"{r.grid.rows}x{r.grid.cols}", "exec_s": r.exec_time,
         "comm_s": r.comm_time, "expand_len": r.expand_length,
         "fold_len": r.fold_length}
        for r in table
    ]
    write(out_dir, "table1_topologies",
          format_table(["RxC", "exec(s)", "comm(s)", "expand", "fold"],
                       [[r["grid"], f"{r['exec_s']:.6f}", f"{r['comm_s']:.6f}",
                         f"{r['expand_len']:.1f}", f"{r['fold_len']:.1f}"]
                        for r in rows]), rows)

    # Figure 6 — partition volumes + crossover
    vols = F.fig6_partition_volume(20_000, 10.0, 16)
    k_star = crossover_degree(20_000, 16)
    text = "\n".join(
        [format_series(label, range(len(v)), v.tolist()) for label, v in vols.items()]
        + [f"analytic crossover: k* = {k_star:.2f}"]
    )
    rows = [
        {"level": i, "volume_1d": int(vols["1d"][i]) if i < len(vols["1d"]) else 0,
         "volume_2d": int(vols["2d"][i]) if i < len(vols["2d"]) else 0}
        for i in range(max(len(vols["1d"]), len(vols["2d"])))
    ]
    write(out_dir, "fig6_partition_volume", text, rows)

    # Figure 7 — redundancy
    red = F.fig7_redundancy([4, 16, 64], 400, 10.0)
    rows = [{"P": p, "redundancy_pct": r} for p, r in red]
    write(out_dir, "fig7_redundancy",
          format_table(["P", "redundancy %"], [[p, f"{r:.1f}"] for p, r in red]), rows)

    # Memory feasibility at paper scale
    model = MemoryModel(n=100_000 * 32_768, k=10.0, grid=GridShape(128, 256))
    write(
        out_dir, "memory_feasibility",
        f"paper headline (3.2B vertices, 32768 nodes): "
        f"{model.total_bytes / 2**20:.1f} MB/rank of 512 MB -> "
        f"fits = {fits_in_memory(model)}",
        [{"total_mb": model.total_bytes / 2**20, **{k: v / 2**20 for k, v in model.breakdown().items()}}],
    )
    print(f"\nall artifacts in {out_dir}/")


if __name__ == "__main__":
    main()
