#!/usr/bin/env python3
"""Weak- and strong-scaling study — Figures 4.a and 5 in miniature.

Sweeps the virtual machine size, runs the paper's BFS configuration at
each point, and fits the paper's claimed scaling laws:

* weak scaling (|V|/rank fixed): time ~ a * log2(P) + b,
* strong scaling (graph fixed):  speedup ~ a * sqrt(P).

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.scaling import log_fit, speedup_curve, sqrt_fit
from repro.harness.figures import PAPER_OPTS, fig4a_weak_scaling, fig5_strong_scaling
from repro.harness.report import format_table


def weak_scaling_study() -> None:
    p_values = [1, 4, 16, 64]
    points = fig4a_weak_scaling(p_values, 800, 10.0, searches=2, opts=PAPER_OPTS)
    rows = [
        [p.p, p.n, f"{p.mean_time * 1e3:.3f}", f"{p.comm_time * 1e3:.3f}"]
        for p in points
    ]
    print("Weak scaling (|V|/rank = 800, k = 10):")
    print(format_table(["P", "n", "time (ms)", "comm (ms)"], rows))
    times = np.array([p.mean_time for p in points])
    a, b, r2 = log_fit(np.array(p_values), times)
    print(f"fit: time = {a * 1e3:.3f} ms * log2(P) + {b * 1e3:.3f} ms   (R^2 = {r2:.3f})")
    print("paper's shape: execution time grows in proportion to log P\n")


def strong_scaling_study() -> None:
    p_values = [1, 4, 16, 36, 64]
    rows_raw = fig5_strong_scaling(32_000, 10.0, p_values, searches=2, opts=PAPER_OPTS)
    times = np.array([t for _p, t in rows_raw])
    speedups = speedup_curve(times)
    rows = [
        [p, f"{t * 1e3:.3f}", f"{s:.2f}"] for (p, t), s in zip(rows_raw, speedups)
    ]
    print("Strong scaling (n = 32000, k = 10):")
    print(format_table(["P", "time (ms)", "speedup"], rows))
    a, r2 = sqrt_fit(np.array(p_values), speedups)
    print(f"fit: speedup = {a:.2f} * sqrt(P)   (R^2 = {r2:.3f})")
    print("paper's shape: speedup grows ~ sqrt(P) for small P, then tapers\n")


def main() -> None:
    weak_scaling_study()
    strong_scaling_study()


if __name__ == "__main__":
    main()
