#!/usr/bin/env python3
"""Semantic-graph path search — the paper's motivating application.

The paper's introduction: "The nature of the relationship between two
vertices in a semantic graph ... can be determined by the shortest path
between them using BFS."  This example builds a synthetic semantic graph
(entities connected by an R-MAT model, whose skewed degrees mimic real
entity graphs: a few hub entities, many peripheral ones), then answers
relationship queries with the paper's two search strategies:

* uni-directional distributed BFS with early termination, and
* the bi-directional search of Section 2.3,

and reports the distance (degrees of separation) plus the cost of each
strategy — showing the bi-directional advantage the paper measures in
Figure 4.c.

Run:  python examples/semantic_path_search.py
"""

from __future__ import annotations

import numpy as np

from repro.api import bidirectional_bfs, distributed_bfs
from repro.graph.csr import CsrGraph
from repro.graph.generators import rmat_edges
from repro.session import BfsSession
from repro.utils.rng import RngFactory

SCALE = 14          # 16384 entities
EDGE_FACTOR = 8
GRID = (4, 4)


def build_semantic_graph(seed: int = 7) -> CsrGraph:
    """A synthetic entity graph with heavy-tailed degrees (R-MAT)."""
    rng = RngFactory(seed).named("semantic-graph")
    edges = rmat_edges(SCALE, EDGE_FACTOR, rng)
    return CsrGraph.from_edges(1 << SCALE, edges)


def main() -> None:
    graph = build_semantic_graph()
    degrees = graph.degree()
    hubs = np.argsort(degrees)[-3:][::-1]
    print(
        f"semantic graph: {graph.n} entities, {graph.num_edges} relations, "
        f"max degree {int(degrees.max())} (hub entity {int(hubs[0])})"
    )

    rng = RngFactory(13).named("queries")
    connected = np.where(degrees > 0)[0]
    queries = [
        (int(connected[rng.integers(connected.size)]),
         int(connected[rng.integers(connected.size)]))
        for _ in range(5)
    ]

    print(f"\n{'query':>16}  {'distance':>8}  {'uni time':>10}  {'bi time':>10}  {'saving':>7}")
    for s, t in queries:
        uni = distributed_bfs(graph, GRID, s, target=t)
        bi = bidirectional_bfs(graph, GRID, s, t)
        distance = "none" if not bi.found else str(bi.path_length)
        uni_level = "none" if not uni.found_target else str(uni.target_level)
        assert distance == uni_level, "strategies must agree on the distance"
        saving = 1 - bi.elapsed / uni.elapsed
        print(
            f"{s:>7} -> {t:<6}  {distance:>8}  {uni.elapsed:>9.5f}s  "
            f"{bi.elapsed:>9.5f}s  {saving:>6.0%}"
        )

    # Relationship through a hub: the small-world effect in action.
    hub = int(hubs[0])
    peripheral = int(connected[np.argmin(degrees[connected])])
    result = bidirectional_bfs(graph, GRID, hub, peripheral)
    print(
        f"\nhub {hub} to peripheral entity {peripheral}: "
        + (f"{result.path_length} hops" if result.found else "not connected")
    )

    # For repeated queries, a session builds the 2D partition once and can
    # return the explicit relationship chain, not just its length.
    session = BfsSession(graph, GRID)
    s, t = queries[0]
    chain = session.shortest_path(s, t)
    if chain is not None:
        print(f"relationship chain {s} -> {t}: " + " -> ".join(map(str, chain)))
    print(
        f"session served {session.queries_served} queries, "
        f"{session.total_simulated_time * 1e3:.2f} ms simulated total"
    )


if __name__ == "__main__":
    main()
