#!/usr/bin/env python3
"""Distributed graph generation: each rank builds only its own blocks.

At the paper's scale (3.2 billion vertices) no node can hold the global
graph — each of the 32,768 nodes must generate exactly the part of the
adjacency matrix it stores.  This example demonstrates the library's
deterministic cell-based construction at half a million vertices:

1. every rank independently samples its ~2P pair-space cells,
2. the resulting per-rank structures are assembled into a 2D partition
   (the global edge list is never materialised),
3. a distributed BFS runs on it, and
4. the measured per-rank memory matches the Section 2.4 analytic model.

Run:  python examples/distributed_generation.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.memory import MemoryModel
from repro.api import build_communicator
from repro.bfs.bfs_2d import Bfs2DEngine
from repro.bfs.level_sync import run_bfs
from repro.graph.distributed_gen import DistributedGraphBuilder
from repro.types import GraphSpec, GridShape

SPEC = GraphSpec(n=500_000, k=8, seed=33)
GRID = GridShape(8, 8)


def main() -> None:
    builder = DistributedGraphBuilder(SPEC, GRID)
    print(
        f"building n={SPEC.n:,} (k={SPEC.k:g}) across {GRID.size} ranks, "
        f"~{2 * GRID.size} cells each; no global graph is ever assembled"
    )

    t0 = time.perf_counter()
    locals_ = builder.build_all()
    build_seconds = time.perf_counter() - t0
    entries = np.array([loc.num_stored_entries for loc in locals_])
    print(
        f"generated {entries.sum():,} adjacency entries in {build_seconds:.2f}s host time "
        f"(per-rank min {entries.min():,} / max {entries.max():,})"
    )

    model = MemoryModel(n=SPEC.n, k=SPEC.k, grid=GRID)
    print(
        f"Section 2.4 model: {model.expected_edge_entries:,.0f} entries/rank expected "
        f"-> measured mean {entries.mean():,.0f}"
    )

    from repro.partition.two_d import TwoDPartition

    partition = TwoDPartition.from_locals(SPEC.n, GRID, locals_)
    comm = build_communicator(GRID)
    result = run_bfs(Bfs2DEngine(partition, comm), source=0)
    print(result.summary())
    print(
        f"simulated {result.elapsed * 1e3:.1f} ms "
        f"(comm {result.comm_time * 1e3:.1f} ms) over {result.num_levels} levels"
    )


if __name__ == "__main__":
    main()
